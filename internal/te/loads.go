package te

import (
	"cmp"
	"fmt"
	"slices"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/topo"
)

// LinkLoads propagates a demand set over the forwarding behaviour
// described by per-prefix route views (IGP or Fibbing-augmented) and
// returns the steady-state load on every directed link. Traffic at a
// router splits over its next hops proportionally to the ECMP weights —
// the fluid limit of per-flow hashing.
func LinkLoads(t *topo.Topology, viewsByPrefix map[string]map[topo.NodeID]fibbing.RouteView, demands []topo.Demand) (map[topo.LinkID]float64, error) {
	loads := make(map[topo.LinkID]float64)
	// Group demands per prefix.
	perPrefix := make(map[string]map[topo.NodeID]float64)
	for _, d := range demands {
		if perPrefix[d.PrefixName] == nil {
			perPrefix[d.PrefixName] = make(map[topo.NodeID]float64)
		}
		perPrefix[d.PrefixName][d.Ingress] += d.Volume
	}
	names := make([]string, 0, len(perPrefix))
	for name := range perPrefix {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		views, ok := viewsByPrefix[name]
		if !ok {
			return nil, fmt.Errorf("te: no route views for prefix %q", name)
		}
		if err := propagate(t, views, perPrefix[name], loads); err != nil {
			return nil, fmt.Errorf("te: prefix %s: %w", name, err)
		}
	}
	return loads, nil
}

// propagate pushes per-ingress volumes through the forwarding DAG.
func propagate(t *topo.Topology, views map[topo.NodeID]fibbing.RouteView, ingress map[topo.NodeID]float64, loads map[topo.LinkID]float64) error {
	// Node volume = injected + received; process in topological order of
	// the forwarding DAG (views are loop-free per CheckDelivery, but we
	// guard against cycles anyway).
	indeg := make(map[topo.NodeID]int)
	for u, v := range views {
		if _, ok := indeg[u]; !ok {
			indeg[u] = 0
		}
		for nh := range v.NextHops {
			indeg[nh]++
		}
	}
	vol := make(map[topo.NodeID]float64, len(ingress))
	for u, x := range ingress {
		vol[u] += x
	}
	queue := make([]topo.NodeID, 0, len(indeg))
	for u, d := range indeg {
		if d == 0 {
			queue = append(queue, u)
		}
	}
	slices.Sort(queue)
	processed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		processed++
		view := views[u]
		x := vol[u]
		if x > 0 && !view.Local {
			total := view.NextHops.Total()
			if total == 0 {
				return fmt.Errorf("traffic stranded at %s", t.Name(u))
			}
			for nh, w := range view.NextHops {
				share := x * float64(w) / float64(total)
				l, ok := t.FindLink(u, nh)
				if !ok {
					return fmt.Errorf("no link %s->%s", t.Name(u), t.Name(nh))
				}
				loads[l.ID] += share
				vol[nh] += share
			}
		}
		for nh := range view.NextHops {
			indeg[nh]--
			if indeg[nh] == 0 {
				queue = append(queue, nh)
			}
		}
	}
	if processed != len(indeg) {
		return fmt.Errorf("forwarding graph contains a cycle")
	}
	return nil
}

// IGPLoads is a convenience: route demands over plain IGP shortest paths.
func IGPLoads(t *topo.Topology, demands []topo.Demand) (map[topo.LinkID]float64, error) {
	views := make(map[string]map[topo.NodeID]fibbing.RouteView)
	for _, d := range demands {
		if _, ok := views[d.PrefixName]; ok {
			continue
		}
		v, err := fibbing.IGPView(t, d.PrefixName)
		if err != nil {
			return nil, err
		}
		views[d.PrefixName] = v
	}
	return LinkLoads(t, views, demands)
}

// LoadsWithLies routes demands over the Fibbing-augmented network.
func LoadsWithLies(t *topo.Topology, liesByPrefix map[string][]fibbing.Lie, demands []topo.Demand) (map[topo.LinkID]float64, error) {
	views := make(map[string]map[topo.NodeID]fibbing.RouteView)
	for _, d := range demands {
		if _, ok := views[d.PrefixName]; ok {
			continue
		}
		v, err := fibbing.Evaluate(t, d.PrefixName, liesByPrefix[d.PrefixName])
		if err != nil {
			return nil, err
		}
		views[d.PrefixName] = v
	}
	return LinkLoads(t, views, demands)
}

// FormatLoads renders loads as "A->B: v" lines sorted by link name,
// for experiment output. Loads below SolverRelTol of the largest load
// are propagation noise and omitted, whatever the absolute scale.
func FormatLoads(t *topo.Topology, loads map[topo.LinkID]float64) []string {
	maxLoad := 0.0
	for _, v := range loads {
		if v > maxLoad {
			maxLoad = v
		}
	}
	eps := SolverRelTol * maxLoad
	type row struct {
		name string
		v    float64
	}
	var rows []row
	for id, v := range loads {
		if v <= eps {
			continue
		}
		l := t.Link(id)
		rows = append(rows, row{fmt.Sprintf("%s->%s", t.Name(l.From), t.Name(l.To)), v})
	}
	slices.SortFunc(rows, func(a, b row) int { return cmp.Compare(a.name, b.name) })
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%s: %g", r.name, r.v)
	}
	return out
}
