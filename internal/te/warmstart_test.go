package te

import (
	"math"
	"testing"

	"fibbing.net/fibbing/internal/topo"
)

// scaleDemands returns the demand set with every volume multiplied by f.
func scaleDemands(demands []topo.Demand, f float64) []topo.Demand {
	out := append([]topo.Demand(nil), demands...)
	for i := range out {
		out[i].Volume *= f
	}
	return out
}

// assertSameMinMax fails unless warm and cold agree on the objective and
// every per-link flow within SolverRelTol of the problem's own scale.
func assertSameMinMax(t *testing.T, tp *topo.Topology, got, want *MinMaxResult) {
	t.Helper()
	if math.Abs(got.MaxUtilisation-want.MaxUtilisation) > SolverRelTol*math.Max(1, want.MaxUtilisation) {
		t.Fatalf("warm θ* = %v, cold θ* = %v", got.MaxUtilisation, want.MaxUtilisation)
	}
	for name, flows := range want.Flow {
		volScale := 0.0
		for _, v := range flows {
			if v > volScale {
				volScale = v
			}
		}
		tol := SolverRelTol * math.Max(1, volScale)
		for id, v := range flows {
			if math.Abs(got.Flow[name][id]-v) > tol {
				l := tp.Link(id)
				t.Fatalf("warm flow[%s][%s->%s] = %v, cold = %v",
					name, tp.Name(l.From), tp.Name(l.To), got.Flow[name][id], v)
			}
		}
		for id, v := range got.Flow[name] {
			if _, ok := flows[id]; !ok && v > tol {
				t.Fatalf("warm has extra flow %v on link %v of %s", v, id, name)
			}
		}
	}
}

// TestMinMaxSolverWarmEqualsCold drives a MinMaxSolver through a train of
// demand-volume changes on a fixed topology and checks every warm solve
// against an independent cold SolveMinMax. The volume multipliers span
// six orders of magnitude, so the warm path is also exercised across
// ProblemScale changes (the normalised coefficients shift between
// solves, which the refactorisation must absorb).
func TestMinMaxSolverWarmEqualsCold(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	base := topo.Fig1Demands(tp, 8e6)

	s := NewMinMaxSolver()
	for _, f := range []float64{1, 1.7, 0.3, 250, 1e-3, 1e3, 42} {
		demands := scaleDemands(base, f)
		warm, err := s.Solve(tp, demands)
		if err != nil {
			t.Fatalf("warm solve (f=%v): %v", f, err)
		}
		cold, err := SolveMinMax(tp, demands)
		if err != nil {
			t.Fatalf("cold solve (f=%v): %v", f, err)
		}
		assertSameMinMax(t, tp, warm, cold)
	}
	st := s.Stats()
	if st.Warm == 0 {
		t.Fatalf("no warm solves happened: %+v", st)
	}
	if st.Warm+st.Cold != 7 {
		t.Fatalf("warm+cold = %d, want 7: %+v", st.Warm+st.Cold, st)
	}
}

// TestMinMaxSolverStructureChangeSolvesCold removes a link between
// solves and checks the solver notices the structural change instead of
// reusing a basis whose column layout no longer matches.
func TestMinMaxSolverStructureChangeSolvesCold(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	demands := topo.Fig1Demands(tp, 8e6)

	s := NewMinMaxSolver()
	if _, err := s.Solve(tp, demands); err != nil {
		t.Fatal(err)
	}
	first := s.Stats()
	if first.Cold != 1 || first.Warm != 0 {
		t.Fatalf("first solve not cold: %+v", first)
	}

	// Drop B-R3: the believed topology a failover plan solves over.
	b, r3 := tp.MustNode(topo.Fig1B), tp.MustNode(topo.Fig1R3)
	var drop []topo.LinkID
	for _, l := range tp.Links() {
		if (l.From == b && l.To == r3) || (l.From == r3 && l.To == b) {
			drop = append(drop, l.ID)
		}
	}
	reduced := tp.CloneWithoutLinks(drop...)
	warm, err := s.Solve(reduced, demands)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveMinMax(reduced, demands)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMinMax(t, reduced, warm, cold)
	st := s.Stats()
	if st.Cold != 2 {
		t.Fatalf("reduced-topology solve should be cold: %+v", st)
	}
	// Fallback would mean the key wrongly matched; the structure key must
	// already differ.
	if st.Fallback != 0 {
		t.Fatalf("structure change hit the warm path: %+v", st)
	}
}
