package te

import (
	"cmp"
	"fmt"
	"slices"

	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/topo"
)

// Tunnel is one RSVP-TE LSP: an explicit path with a bandwidth
// reservation.
type Tunnel struct {
	Path      []topo.NodeID
	Bandwidth float64
	Demand    int // index of the demand it carries (diagnostics)
}

// RSVPTEResult is the outcome of the MPLS RSVP-TE baseline: explicit
// tunnels placed by constrained shortest-path-first, with the control- and
// data-plane overhead the paper holds against it.
type RSVPTEResult struct {
	Tunnels []Tunnel
	// MaxUtilisation over reserved bandwidth.
	MaxUtilisation float64
	// SignalingMessages counts PATH + RESV messages: 2 per tunnel hop —
	// the control-plane overhead of pre-provisioning tunnels.
	SignalingMessages int
	// StateEntries counts per-router LSP state: one per (tunnel, hop).
	StateEntries int
	// EncapBytesPerPacket is the MPLS label stack overhead every data
	// packet pays (Fibbing pays zero).
	EncapBytesPerPacket int
	// Unplaced lists demands (by index) that could not be fully placed.
	Unplaced []int
}

// PlaceTunnels runs the CSPF baseline: demands are processed largest
// first; each becomes one or more tunnels routed on the shortest path with
// sufficient residual capacity. When no single path fits a demand, the
// demand is split into halves recursively (down to minChunk) — RSVP-TE's
// way of achieving unequal splits, at the price of one more tunnel each
// time.
func PlaceTunnels(t *topo.Topology, demands []topo.Demand) (*RSVPTEResult, error) {
	residual := make(map[topo.LinkID]float64)
	for _, l := range t.Links() {
		residual[l.ID] = l.Capacity
	}
	res := &RSVPTEResult{EncapBytesPerPacket: 4}

	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(demands[b].Volume, demands[a].Volume) })

	for _, di := range order {
		d := demands[di]
		p, ok := t.PrefixByName(d.PrefixName)
		if !ok {
			return nil, fmt.Errorf("te: unknown prefix %q", d.PrefixName)
		}
		sinks := make(map[topo.NodeID]bool, len(p.Attachments))
		for _, a := range p.Attachments {
			sinks[a.Node] = true
		}
		if sinks[d.Ingress] {
			continue
		}
		minChunk := d.Volume / 16
		if !placeChunk(t, residual, res, di, d.Ingress, sinks, d.Volume, minChunk) {
			res.Unplaced = append(res.Unplaced, di)
		}
	}

	// Utilisation over reservations.
	used := make(map[topo.LinkID]float64)
	for _, tun := range res.Tunnels {
		for i := 0; i+1 < len(tun.Path); i++ {
			l, _ := t.FindLink(tun.Path[i], tun.Path[i+1])
			used[l.ID] += tun.Bandwidth
		}
	}
	res.MaxUtilisation = MaxUtilOfLoads(t, used)
	for _, tun := range res.Tunnels {
		hops := len(tun.Path) - 1
		res.SignalingMessages += 2 * hops
		res.StateEntries += hops
	}
	return res, nil
}

// placeChunk tries to fit volume on one constrained shortest path; on
// failure it recursively halves the chunk (two tunnels) until minChunk.
func placeChunk(t *topo.Topology, residual map[topo.LinkID]float64, res *RSVPTEResult,
	di int, src topo.NodeID, sinks map[topo.NodeID]bool, volume, minChunk float64) bool {
	path := cspf(t, residual, src, sinks, volume)
	if path != nil {
		for i := 0; i+1 < len(path); i++ {
			l, _ := t.FindLink(path[i], path[i+1])
			residual[l.ID] -= volume
		}
		res.Tunnels = append(res.Tunnels, Tunnel{Path: path, Bandwidth: volume, Demand: di})
		return true
	}
	if volume/2 < minChunk {
		return false
	}
	ok1 := placeChunk(t, residual, res, di, src, sinks, volume/2, minChunk)
	ok2 := placeChunk(t, residual, res, di, src, sinks, volume/2, minChunk)
	return ok1 && ok2
}

// cspf computes the shortest path from src to any sink using only links
// with residual capacity >= volume. Host nodes never transit.
func cspf(t *topo.Topology, residual map[topo.LinkID]float64, src topo.NodeID, sinks map[topo.NodeID]bool, volume float64) []topo.NodeID {
	g := spf.NewGraph(t.NumNodes())
	for _, l := range t.Links() {
		if t.Node(l.From).Host || t.Node(l.To).Host {
			continue
		}
		// Relative slack: residual within SolverRelTol of the requested
		// volume still fits (absolute slack would reject legitimate links
		// at Gbit volumes, where subtraction roundoff exceeds 1e-9).
		if l.Capacity > 0 && residual[l.ID] < volume*(1-SolverRelTol) {
			continue
		}
		g.AddEdge(l.From, spf.Edge{To: l.To, Weight: l.Weight, Link: l.ID})
	}
	tree := spf.ComputeRouters(g, t, src)
	bestDist := spf.Infinity
	var best topo.NodeID = topo.NoNode
	for s := range sinks {
		if tree.Reachable(s) && tree.Dist[s] < bestDist {
			bestDist, best = tree.Dist[s], s
		}
	}
	if best == topo.NoNode {
		return nil
	}
	paths := tree.Paths(best, 1)
	if len(paths) == 0 {
		return nil
	}
	return paths[0]
}

// OverheadComparison contrasts Fibbing's control/data-plane costs with
// RSVP-TE's for the same demand set (the paper's §2 argument).
type OverheadComparison struct {
	FibbingLies       int
	FibbingLSABytes   int
	FibbingEncapBytes int // always 0: plain IP forwarding

	Tunnels            int
	SignalingMessages  int
	StateEntries       int
	TunnelEncapBytes   int
	RSVPMaxUtilisation float64
	FibbingOptimal     float64
	FibbingRealised    float64
}

// CompareOverheads runs both machineries on the same input.
func CompareOverheads(t *topo.Topology, demands []topo.Demand, maxDenom int) (*OverheadComparison, error) {
	fb, err := RealizeMinMax(t, demands, maxDenom)
	if err != nil {
		return nil, err
	}
	rsvp, err := PlaceTunnels(t, demands)
	if err != nil {
		return nil, err
	}
	cmp := &OverheadComparison{
		FibbingLies:        fb.Lies,
		FibbingEncapBytes:  0,
		Tunnels:            len(rsvp.Tunnels),
		SignalingMessages:  rsvp.SignalingMessages,
		StateEntries:       rsvp.StateEntries,
		TunnelEncapBytes:   rsvp.EncapBytesPerPacket,
		RSVPMaxUtilisation: rsvp.MaxUtilisation,
		FibbingOptimal:     fb.Optimal,
		FibbingRealised:    fb.Realised,
	}
	for name, lies := range fb.PerPrefixLies {
		for i, lie := range lies {
			cmp.FibbingLSABytes += len(lie.ToLSA(0xFFFF0000, uint32(i), 1).Encode())
		}
		_ = name
	}
	return cmp, nil
}
