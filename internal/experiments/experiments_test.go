package experiments

import (
	"strings"
	"testing"
	"time"
)

// Every experiment must run cleanly and pass its own embedded checks —
// this is the repository-level guarantee that the paper's numbers
// reproduce.
func TestAllExperimentsReproduce(t *testing.T) {
	results, err := All(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 13 {
		t.Fatalf("experiments = %d, want 13", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %q", r.ID)
		}
		seen[r.ID] = true
		if len(r.Check) > 0 {
			t.Errorf("%s: checks failed: %v", r.ID, r.Check)
		}
		if r.Table == nil {
			t.Errorf("%s: no table", r.ID)
		}
	}
	for _, id := range []string{
		"fig1a", "fig1b", "fig1c", "fig1d",
		"fig2-with", "fig2-without", "demo-qoe",
		"overhead-rsvpte", "minmax-optimality",
		"weightchange-vs-lie", "per-destination", "abr-extension", "reaction-latency",
	} {
		if !seen[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
	report := Report(results)
	if !strings.Contains(report, "fig2-with") || !strings.Contains(report, "B-R3") {
		t.Fatalf("report incomplete:\n%s", report[:min(len(report), 500)])
	}
	if strings.Contains(report, "CHECK FAILED") {
		t.Fatalf("report contains failed checks:\n%s", report)
	}
}

func TestFig1aPinsPaperPaths(t *testing.T) {
	r, err := Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{"A>B>R2>C", "B>R2>C", "R1>R4>C"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1a missing path %s:\n%s", want, out)
		}
	}
}

func TestWeightChangeCostsMoreThanLie(t *testing.T) {
	r, err := WeightChangeVsLie()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Check) > 0 {
		t.Fatalf("checks: %v", r.Check)
	}
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "weight change") || !strings.Contains(b.String(), "inject lie") {
		t.Fatalf("table incomplete:\n%s", b.String())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
