// Package experiments regenerates every figure and quantitative claim of
// the paper. Each experiment returns a Result with a rendered table and
// machine-checkable values; cmd/experiments prints them, EXPERIMENTS.md
// records them, and the root benchmark suite times them.
package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/metrics"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
	"fibbing.net/fibbing/internal/video"
)

// Result is one reproduced figure/table.
type Result struct {
	ID      string // e.g. "fig1a"
	Caption string
	Table   *metrics.Table
	Notes   []string
	// Check is non-empty when a paper-pinned value failed to reproduce.
	Check []string
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) failf(format string, args ...any) {
	r.Check = append(r.Check, fmt.Sprintf(format, args...))
}

// Render writes the result in the experiment report format.
func (r *Result) Render(w *strings.Builder) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Caption)
	if r.Table != nil {
		_ = r.Table.Render(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, c := range r.Check {
		fmt.Fprintf(w, "CHECK FAILED: %s\n", c)
	}
	w.WriteByte('\n')
}

// Fig1a reproduces Figure 1a: the IGP shortest paths from A and B towards
// the blue prefix overlap along B-R2-C.
func Fig1a() (*Result, error) {
	tp := topo.Fig1(topo.Fig1Opts{})
	g := spf.FromTopology(tp)
	res := &Result{ID: "fig1a", Caption: "IGP shortest paths overlap on B-R2-C"}
	res.Table = metrics.NewTable("router", "shortest path to blue", "cost")
	c := tp.MustNode(topo.Fig1C)
	for _, name := range []string{"A", "B", "R1", "R2", "R3", "R4"} {
		src := tp.MustNode(name)
		tree := spf.Compute(g, src, nil)
		paths := tree.Paths(c, 4)
		for _, p := range paths {
			res.Table.AddRow(name, spf.FormatPath(tp, p), tree.Dist[c])
		}
	}
	aTree := spf.Compute(g, tp.MustNode("A"), nil)
	if got := spf.FormatPath(tp, aTree.Paths(c, 1)[0]); got != "A>B>R2>C" {
		res.failf("A's path = %s, want A>B>R2>C", got)
	}
	res.note("paths from A and B share B>R2>C, as in the paper's Figure 1a")
	return res, nil
}

// Fig1b reproduces Figure 1b: demands of 100 relative units at both A and
// B load A-B with 100 and B-R2, R2-C with 200 (the overload).
func Fig1b() (*Result, error) {
	tp := topo.Fig1(topo.Fig1Opts{})
	demands := topo.Fig1Demands(tp, 100)
	loads, err := te.IGPLoads(tp, demands)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig1b", Caption: "pre-Fibbing loads: the surge overloads B-R2-C"}
	res.Table = metrics.NewTable("link", "relative load")
	for _, line := range te.FormatLoads(tp, loads) {
		parts := strings.SplitN(line, ": ", 2)
		res.Table.AddRow(parts[0], parts[1])
	}
	max := te.MaxUtilOfLoads(tp, loads) * topo.DefaultFig1Capacity
	if max != 200 {
		res.failf("max load = %v, want 200", max)
	}
	res.note("max relative load 200 on B-R2 and R2-C (paper: overloaded links)")
	return res, nil
}

// Fig1c reproduces Figure 1c: the augmentation computes exactly the
// paper's lies — fB at B (cost 2, via R3) and two fA at A (cost 3, via R1).
func Fig1c() (*Result, error) {
	tp := topo.Fig1(topo.Fig1Opts{})
	dag := fibbing.Fig1DAG(tp)
	aug, err := fibbing.AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig1c", Caption: "fake nodes computed for the Figure 1c requirement"}
	res.Table = metrics.NewTable("fake node", "attached to", "resolves to", "cost")
	for i, l := range aug.Lies {
		res.Table.AddRow(fmt.Sprintf("f%d", i+1), tp.Name(l.Attach), tp.Name(l.Via), l.Cost)
	}
	if aug.LieCount() != 3 {
		res.failf("lie count = %d, want 3", aug.LieCount())
	}
	if err := fibbing.Verify(tp, topo.Fig1BluePrefixName, aug.Lies, dag); err != nil {
		res.failf("verification: %v", err)
	}
	res.note("3 lies: one fB (total cost 2 via R3), two fA (total cost 3 via R1) — matches the paper")
	return res, nil
}

// Fig1d reproduces Figure 1d: with the lies installed, the loads become
// 33.3 on A-B and 66.7 on every other used link.
func Fig1d() (*Result, error) {
	tp := topo.Fig1(topo.Fig1Opts{})
	demands := topo.Fig1Demands(tp, 100)
	dag := fibbing.Fig1DAG(tp)
	aug, err := fibbing.AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		return nil, err
	}
	loads, err := te.LoadsWithLies(tp,
		map[string][]fibbing.Lie{topo.Fig1BluePrefixName: aug.Lies}, demands)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig1d", Caption: "post-Fibbing loads: uneven splits cut the max load to 66.7"}
	res.Table = metrics.NewTable("link", "relative load")
	var max float64
	for _, line := range te.FormatLoads(tp, loads) {
		parts := strings.SplitN(line, ": ", 2)
		res.Table.AddRow(parts[0], parts[1])
	}
	for _, v := range loads {
		if v > max {
			max = v
		}
	}
	if diff := max - 200.0/3; diff > 1e-6 || diff < -1e-6 {
		res.failf("max load = %v, want 66.67", max)
	}
	res.note("max relative load drops 200 -> 66.7 while total delivered traffic is unchanged")
	return res, nil
}

// Fig2 reproduces Figure 2: link throughput over time under the demo's
// flow schedule, with the controller enabled.
func Fig2(withController bool, until time.Duration) (*Result, error) {
	sim, out, err := controller.RunFig2(withController, until, 0)
	if err != nil {
		return nil, err
	}
	mode := "with"
	if !withController {
		mode = "without"
	}
	res := &Result{
		ID:      "fig2-" + mode,
		Caption: fmt.Sprintf("throughput over time (%s Fibbing controller), byte/s", mode),
	}
	res.Table = metrics.SeriesTable(5*time.Second, out.Series...)
	for _, d := range out.Decisions {
		res.note("t=%-4v %-18s lies=%d  %s", d.At, d.Strategy, d.Lies, d.Detail)
	}
	res.note("final max utilisation %.2f, live lies %d, delivered %.1f Mbit/s",
		out.MaxUtilisation, out.LiveLies, sim.Net.TotalThroughput()/1e6)
	if withController {
		if out.LiveLies != 3 {
			res.failf("live lies = %d, want 3", out.LiveLies)
		}
		if out.MaxUtilisation > 0.95 {
			res.failf("max utilisation %v: congestion not prevented", out.MaxUtilisation)
		}
	} else if out.MaxUtilisation < 0.99 {
		res.failf("without controller the bottleneck should saturate (got %v)", out.MaxUtilisation)
	}
	return res, nil
}

// DemoQoE reproduces the demo's observable: smooth playback with the
// controller, stutter without.
func DemoQoE(until time.Duration) (*Result, error) {
	_, with, err := controller.RunFig2(true, until, 0)
	if err != nil {
		return nil, err
	}
	_, without, err := controller.RunFig2(false, until, 0)
	if err != nil {
		return nil, err
	}
	aw := video.AggregateQoE(with.QoE)
	ao := video.AggregateQoE(without.QoE)
	res := &Result{ID: "demo-qoe", Caption: "video QoE with vs. without the Fibbing controller"}
	res.Table = metrics.NewTable("controller", "sessions", "smooth", "stalls", "mean rebuffer %", "worst rebuffer %", "mean startup")
	res.Table.AddRow("fibbing", aw.Sessions, aw.SmoothSessions, aw.TotalStalls,
		100*aw.MeanRebuffer, 100*aw.WorstRebuffer, aw.MeanStartup.String())
	res.Table.AddRow("disabled", ao.Sessions, ao.SmoothSessions, ao.TotalStalls,
		100*ao.MeanRebuffer, 100*ao.WorstRebuffer, ao.MeanStartup.String())
	if aw.MeanRebuffer > 0.01 {
		res.failf("with controller: rebuffer %.3f, want ~0", aw.MeanRebuffer)
	}
	if ao.MeanRebuffer < 0.1 {
		res.failf("without controller: rebuffer %.3f, want substantial", ao.MeanRebuffer)
	}
	res.note("the paper reports: playbacks smooth with Fibbing, stuttering without")
	return res, nil
}

// OverheadVsRSVPTE quantifies the §2 comparison: Fibbing lies vs RSVP-TE
// tunnels for the same demand sets.
func OverheadVsRSVPTE() (*Result, error) {
	res := &Result{ID: "overhead-rsvpte", Caption: "control/data-plane overhead: Fibbing vs MPLS RSVP-TE"}
	res.Table = metrics.NewTable("topology", "fib lies", "fib LSA bytes", "fib encap B/pkt",
		"tunnels", "signal msgs", "state entries", "mpls encap B/pkt")

	type tc struct {
		name    string
		t       *topo.Topology
		demands []topo.Demand
	}
	fig1 := topo.Fig1(topo.Fig1Opts{})
	cases := []tc{
		{"fig1", fig1, topo.Fig1Demands(fig1, 8e6)},
	}
	for seed := int64(1); seed <= 3; seed++ {
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: 15, Degree: 3, MaxWeight: 5, Prefixes: 2, Capacity: 10e6, Seed: seed,
		})
		cases = append(cases, tc{
			fmt.Sprintf("rand15-seed%d", seed), tp,
			topo.RandomDemands(tp, 6, 1e6, 4e6, seed),
		})
	}
	for _, c := range cases {
		cmp, err := te.CompareOverheads(c.t, c.demands, 16)
		if err != nil {
			res.note("%s: %v (skipped)", c.name, err)
			continue
		}
		res.Table.AddRow(c.name, cmp.FibbingLies, cmp.FibbingLSABytes, cmp.FibbingEncapBytes,
			cmp.Tunnels, cmp.SignalingMessages, cmp.StateEntries, cmp.TunnelEncapBytes)
		if cmp.FibbingEncapBytes != 0 {
			res.failf("%s: fibbing must not encapsulate", c.name)
		}
	}
	res.note("Fibbing forwards plain IP (0 encap bytes); RSVP-TE pays per-packet labels plus per-hop signalling and state")
	return res, nil
}

// MinMaxOptimality quantifies the §2 claim that Fibbing can realise the
// optimal min-max link utilisation, against ECMP-only and weight search.
func MinMaxOptimality() (*Result, error) {
	res := &Result{ID: "minmax-optimality", Caption: "max link utilisation: IGP ECMP vs weight search vs greedy vs LP optimum vs Fibbing"}
	res.Table = metrics.NewTable("topology", "igp ecmp", "weight-opt", "greedy", "lp optimum", "fibbing realised", "lies", "weight changes")

	type tc struct {
		name    string
		t       *topo.Topology
		demands []topo.Demand
	}
	fig1 := topo.Fig1(topo.Fig1Opts{})
	cases := []tc{{"fig1", fig1, topo.Fig1Demands(fig1, 8e6)}}
	for seed := int64(1); seed <= 3; seed++ {
		tp := topo.RandomConnected(topo.RandomOpts{
			Nodes: 12, Degree: 3, MaxWeight: 5, Prefixes: 2, Capacity: 10e6, Seed: seed,
		})
		cases = append(cases, tc{
			fmt.Sprintf("rand12-seed%d", seed), tp,
			topo.RandomDemands(tp, 5, 1e6, 4e6, seed),
		})
	}
	for _, c := range cases {
		igp, err := te.ECMPOnlyUtilisation(c.t, c.demands)
		if err != nil {
			return nil, err
		}
		w, err := te.OptimizeWeights(c.t, c.demands, 10, 3)
		if err != nil {
			return nil, err
		}
		gr, err := te.SolveGreedy(c.t, c.demands, 8)
		if err != nil {
			return nil, err
		}
		fb, err := te.RealizeMinMax(c.t, c.demands, 16)
		if err != nil {
			res.note("%s: fibbing realisation failed: %v", c.name, err)
			continue
		}
		res.Table.AddRow(c.name, igp, w.MaxUtilisation, gr.MaxUtilisation, fb.Optimal, fb.Realised, fb.Lies, w.WeightChanges)
		if fb.Optimal > igp+1e-6 {
			res.failf("%s: LP worse than IGP", c.name)
		}
		if fb.Realised < fb.Optimal-1e-6 {
			res.failf("%s: realised better than optimal (impossible)", c.name)
		}
		if gr.MaxUtilisation < fb.Optimal-1e-6 {
			res.failf("%s: greedy beats the LP optimum (impossible)", c.name)
		}
	}
	res.note("fibbing reaches the LP optimum up to ECMP weight quantisation; weight search cannot express uneven splits and changes many devices")
	return res, nil
}

// WeightChangeVsLie quantifies the §1 claim that adapting link weights is
// slow and network-wide, while one lie is a single flooded LSA.
func WeightChangeVsLie() (*Result, error) {
	res := &Result{ID: "weightchange-vs-lie", Caption: "IGP cost of a weight change vs a Fibbing lie (Fig1)"}
	res.Table = metrics.NewTable("action", "protocol packets", "protocol bytes", "SPF runs", "converged in")

	run := func(action string, f func(d *ospf.Domain, tp *topo.Topology) error) error {
		tp := topo.Fig1(topo.Fig1Opts{})
		d := ospf.NewDomain(tp, event.NewScheduler(), ospf.Config{})
		d.Start()
		if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
			return err
		}
		before := d.Stats()
		start := d.Scheduler().Now()
		if err := f(d, tp); err != nil {
			return err
		}
		end, err := d.RunUntilConverged(start + 120*time.Second)
		if err != nil {
			return err
		}
		after := d.Stats()
		res.Table.AddRow(action,
			after.PacketsSent-before.PacketsSent,
			after.BytesSent-before.BytesSent,
			after.SPFRuns-before.SPFRuns,
			(end - start).String())
		return nil
	}

	if err := run("weight change B-R2 (traditional TE step)", func(d *ospf.Domain, tp *topo.Topology) error {
		return d.SetLinkWeight(tp.MustNode("B"), tp.MustNode("R2"), 3)
	}); err != nil {
		return nil, err
	}
	if err := run("inject lie fB (Fibbing)", func(d *ospf.Domain, tp *topo.Topology) error {
		lie := fibbing.Lie{Prefix: topo.Fig1BluePrefix, Attach: tp.MustNode("B"), Via: tp.MustNode("R3"), Cost: 2}
		return d.Router(tp.MustNode("R3")).OriginateForeign(lie.ToLSA(ospf.ControllerIDBase, 1, 1))
	}); err != nil {
		return nil, err
	}
	res.note("a weight change re-floods two Router LSAs and shifts transit routing network-wide; a lie adds one LSA and affects exactly one (router, destination)")
	res.note("in deployment, weight reconfiguration additionally needs per-device CLI/NETCONF sessions, not modelled here")
	return res, nil
}

// PerDestinationIsolation demonstrates §2's per-destination granularity:
// lies for the blue prefix leave routing for a second (green) prefix
// untouched on every router.
func PerDestinationIsolation() (*Result, error) {
	tp := topo.Fig1(topo.Fig1Opts{})
	tp.AddPrefix(greenPrefix(), "green", topo.Attachment{Node: tp.MustNode("R4")})
	res := &Result{ID: "per-destination", Caption: "lies for blue leave the green prefix's routing untouched"}
	res.Table = metrics.NewTable("router", "blue before", "blue after", "green before", "green after")

	blueBefore, err := fibbing.IGPView(tp, topo.Fig1BluePrefixName)
	if err != nil {
		return nil, err
	}
	greenBefore, err := fibbing.IGPView(tp, "green")
	if err != nil {
		return nil, err
	}
	dag := fibbing.Fig1DAG(tp)
	aug, err := fibbing.AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
	if err != nil {
		return nil, err
	}
	blueAfter, err := fibbing.Evaluate(tp, topo.Fig1BluePrefixName, aug.Lies)
	if err != nil {
		return nil, err
	}
	// Green is evaluated with no lies of its own; the blue lies are
	// per-destination and cannot appear in green's computation — this is
	// Fibbing's per-destination granularity by construction, and the
	// protocol-level integration test confirms the LSDB behaves the same.
	greenAfter, err := fibbing.Evaluate(tp, "green", nil)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"A", "B", "R1", "R2", "R3"} {
		n := tp.MustNode(name)
		res.Table.AddRow(name,
			fmtNH(tp, blueBefore[n]), fmtNH(tp, blueAfter[n]),
			fmtNH(tp, greenBefore[n]), fmtNH(tp, greenAfter[n]))
		if !greenBefore[n].NextHops.Equal(greenAfter[n].NextHops) {
			res.failf("%s: green changed", name)
		}
	}
	res.note("per-destination programming: A moves to a 1:2 split for blue while green keeps single-path routing")
	return res, nil
}

func greenPrefix() netip.Prefix {
	return netip.MustParsePrefix("10.77.0.0/16")
}

// ReactionLatency quantifies the demo's "quickly removing the congestion"
// claim: for each wave of the Figure 2 timeline, how long from the wave's
// arrival to the controller's decision, and to full delivery of the
// demand. Without the controller, the third wave never recovers.
func ReactionLatency(until time.Duration) (*Result, error) {
	res := &Result{ID: "reaction-latency", Caption: "time from surge to reaction to full delivery (Fig2 timeline)"}
	res.Table = metrics.NewTable("controller", "wave", "at", "demand Mbit/s", "decision at", "full delivery at")

	type wave struct {
		at     time.Duration
		demand float64 // total offered bit/s after the wave
	}
	waves := []wave{
		{0, 0.5e6},
		{15 * time.Second, 15.5e6},
		{35 * time.Second, 31e6},
	}
	for _, withCtrl := range []bool{true, false} {
		sim, out, err := controller.RunFig2(withCtrl, until, 0)
		if err != nil {
			return nil, err
		}
		// Delivered-to-destination = sum of the three C-facing links.
		var delivered []*metrics.Series
		for _, pair := range [][2]string{{"R2", "C"}, {"R3", "C"}, {"R4", "C"}} {
			s, err := sim.Net.SeriesBetween(pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			delivered = append(delivered, s)
		}
		deliveredAt := func(t time.Duration) float64 {
			sum := 0.0
			for _, s := range delivered {
				sum += s.At(t) * 8 // byte/s -> bit/s
			}
			return sum
		}
		name := "fibbing"
		if !withCtrl {
			name = "disabled"
		}
		for i, w := range waves {
			windowEnd := until
			if i+1 < len(waves) {
				windowEnd = waves[i+1].at
			}
			decision := "-"
			for _, d := range out.Decisions {
				if d.At >= w.at && d.At < windowEnd {
					decision = d.At.String()
					break
				}
			}
			recovery := "never"
			for t := w.at; t <= until; t += time.Second {
				if deliveredAt(t) >= 0.99*w.demand {
					recovery = t.String()
					break
				}
			}
			res.Table.AddRow(name, i+1, w.at.String(), w.demand/1e6, decision, recovery)
			if withCtrl && recovery == "never" {
				res.failf("wave %d never fully delivered with the controller", i+1)
			}
			if !withCtrl && i == 2 && recovery != "never" {
				res.failf("wave 3 recovered without the controller (impossible)")
			}
		}
	}
	res.note("the controller restores full delivery within seconds of each surge (monitor poll + SPF); without it the third wave starves forever")
	return res, nil
}

// ABRExtension is the "what if the application adapts?" extension: the
// Figure 2 timeline replayed with DASH-style adaptive-bitrate players.
// ABR avoids most stalls on its own by downshifting quality — Fibbing's
// value then shows up as delivered bitrate instead of stall counts.
func ABRExtension(until time.Duration) (*Result, error) {
	res := &Result{ID: "abr-extension", Caption: "Figure 2 with adaptive-bitrate players (extension)"}
	res.Table = metrics.NewTable("controller", "sessions", "mean bitrate kbit/s", "top-rung %", "stalls", "switches")
	var withBitrate, withoutBitrate float64
	for _, withCtrl := range []bool{true, false} {
		_, agg, err := controller.RunFig2ABR(withCtrl, until, video.ABRConfig{})
		if err != nil {
			return nil, err
		}
		name := "fibbing"
		if !withCtrl {
			name = "disabled"
			withoutBitrate = agg.MeanBitrate
		} else {
			withBitrate = agg.MeanBitrate
		}
		res.Table.AddRow(name, agg.Sessions, agg.MeanBitrate/1e3,
			100*agg.TopRungShare, agg.TotalStalls, agg.Switches)
	}
	if withBitrate <= withoutBitrate*1.3 {
		res.failf("fibbing should lift ABR bitrate substantially: %0.f vs %0.f",
			withBitrate, withoutBitrate)
	}
	res.note("with ABR the congestion shows as quality loss, not stalls; Fibbing lifts the mean delivered bitrate by ~%.1fx", withBitrate/withoutBitrate)
	return res, nil
}

// All runs every experiment in paper order.
func All(fig2Duration time.Duration) ([]*Result, error) {
	if fig2Duration <= 0 {
		fig2Duration = 60 * time.Second
	}
	type gen func() (*Result, error)
	gens := []gen{
		Fig1a, Fig1b, Fig1c, Fig1d,
		func() (*Result, error) { return Fig2(true, fig2Duration) },
		func() (*Result, error) { return Fig2(false, fig2Duration) },
		func() (*Result, error) { return DemoQoE(fig2Duration) },
		OverheadVsRSVPTE,
		MinMaxOptimality,
		WeightChangeVsLie,
		PerDestinationIsolation,
		func() (*Result, error) { return ABRExtension(fig2Duration) },
		func() (*Result, error) { return ReactionLatency(fig2Duration) },
	}
	var out []*Result
	for _, g := range gens {
		r, err := g()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Report renders all results into one experiment report.
func Report(results []*Result) string {
	var b strings.Builder
	for _, r := range results {
		r.Render(&b)
	}
	return b.String()
}

func fmtNH(tp *topo.Topology, v fibbing.RouteView) string {
	if v.Local {
		return "local"
	}
	if len(v.NextHops) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(v.NextHops))
	for _, n := range sortedNodes(v.NextHops) {
		parts = append(parts, fmt.Sprintf("%s:%d", tp.Name(n), v.NextHops[n]))
	}
	return strings.Join(parts, ",")
}

func sortedNodes(w fibbing.NextHopWeights) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(w))
	for n := range w {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
