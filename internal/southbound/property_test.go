package southbound

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/topo"
)

func newSched() *event.Scheduler { return event.NewScheduler() }

// Property: after any sequence of Apply calls with random lie multisets,
// the manager's installed set equals the last desired multiset, and the
// converged network realises exactly those lies (evaluator == protocol).
func TestLieManagerReconciliationProperty(t *testing.T) {
	f := func(seed int64) bool {
		tp := topo.Fig1(topo.Fig1Opts{})
		d := ospf.NewDomain(tp, newSched(), ospf.Config{})
		d.Start()
		if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
			t.Log(err)
			return false
		}
		mgr := NewLieManager(DirectInjector{Router: d.Router(tp.MustNode("R3"))}, ospf.ControllerIDBase)
		rng := rand.New(rand.NewSource(seed))

		// Candidate equal-cost lies on Fig1 (all provably safe).
		b, a := tp.MustNode("B"), tp.MustNode("A")
		r1, r3 := tp.MustNode("R1"), tp.MustNode("R3")
		blue := topo.Fig1BluePrefix
		pool := []fibbing.Lie{
			{Prefix: blue, Attach: b, Via: r3, Cost: 2},
			{Prefix: blue, Attach: a, Via: r1, Cost: 3},
		}
		var last []fibbing.Lie
		for step := 0; step < 4; step++ {
			last = nil
			for _, lie := range pool {
				for k := 0; k < rng.Intn(3); k++ {
					last = append(last, lie)
				}
			}
			if _, err := mgr.Apply(topo.Fig1BluePrefixName, last); err != nil {
				t.Log(err)
				return false
			}
			if _, err := d.RunUntilConverged(d.Scheduler().Now() + 120*time.Second); err != nil {
				t.Log(err)
				return false
			}
		}
		// Installed must equal the last multiset.
		installed := mgr.Installed(topo.Fig1BluePrefixName)
		if len(installed) != len(last) {
			t.Logf("seed %d: installed %d != desired %d", seed, len(installed), len(last))
			return false
		}
		counts := map[fibbing.Lie]int{}
		for _, l := range last {
			counts[l]++
		}
		for _, l := range installed {
			counts[l]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		// Protocol state must match the evaluator's prediction.
		want, err := fibbing.Evaluate(tp, topo.Fig1BluePrefixName, last)
		if err != nil {
			t.Log(err)
			return false
		}
		for node, view := range want {
			if view.Local || len(view.NextHops) == 0 {
				continue
			}
			route, ok := d.Router(node).FIB().Lookup(blue.Addr())
			if !ok {
				return false
			}
			got := fibbing.NextHopWeights{}
			for _, nh := range route.NextHops {
				got[nh.Node] += nh.Weight
			}
			if !got.Equal(view.NextHops) {
				t.Logf("seed %d: %s FIB %v != %v", seed, tp.Name(node), got, view.NextHops)
				return false
			}
		}
		if len(d.Errors) > 0 {
			t.Logf("seed %d: %v", seed, d.Errors)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
