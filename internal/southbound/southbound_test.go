package southbound

import (
	"net"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/topo"
)

func fig1Domain(t *testing.T) (*topo.Topology, *ospf.Domain) {
	t.Helper()
	tp := topo.Fig1(topo.Fig1Opts{})
	d := ospf.NewDomain(tp, event.NewScheduler(), ospf.Config{})
	d.Start()
	if _, err := d.RunUntilConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	return tp, d
}

func fig1Lies(t *testing.T, tp *topo.Topology) []fibbing.Lie {
	t.Helper()
	aug, err := fibbing.AugmentAddPaths(tp, topo.Fig1BluePrefixName, fibbing.Fig1DAG(tp))
	if err != nil {
		t.Fatal(err)
	}
	return aug.Lies
}

func blueWeights(tp *topo.Topology, d *ospf.Domain, router string) map[string]int {
	r := d.Router(tp.MustNode(router))
	route, ok := r.FIB().Lookup(topo.Fig1BluePrefix.Addr())
	if !ok {
		return nil
	}
	out := map[string]int{}
	for _, nh := range route.NextHops {
		out[tp.Name(nh.Node)] += nh.Weight
	}
	return out
}

func TestLieManagerApplyAndWithdraw(t *testing.T) {
	tp, d := fig1Domain(t)
	mgr := NewLieManager(DirectInjector{Router: d.Router(tp.MustNode("R3"))}, ospf.ControllerIDBase)
	lies := fig1Lies(t, tp)

	delta, err := mgr.Apply(topo.Fig1BluePrefixName, lies)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Injected) != 3 || len(delta.Withdrawn) != 0 || mgr.LieCount() != 3 {
		t.Fatalf("delta=%+v count=%d", delta, mgr.LieCount())
	}
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueWeights(tp, d, "A"); got["B"] != 1 || got["R1"] != 2 {
		t.Fatalf("A = %v", got)
	}

	// Re-applying the identical set must be a no-op.
	delta, err = mgr.Apply(topo.Fig1BluePrefixName, lies)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("idempotent Apply reported delta %+v", delta)
	}

	// Withdraw everything: routing reverts, databases are clean.
	if err := mgr.WithdrawAll(); err != nil {
		t.Fatal(err)
	}
	if mgr.LieCount() != 0 {
		t.Fatalf("count after withdraw = %d", mgr.LieCount())
	}
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueWeights(tp, d, "A"); len(got) != 1 || got["B"] != 1 {
		t.Fatalf("A after withdraw = %v", got)
	}
	for n, r := range d.Routers() {
		if len(r.DB().ByType(ospf.TypeFake)) != 0 {
			t.Fatalf("%s still has fakes", tp.Name(n))
		}
	}
}

func TestLieManagerPartialReconcile(t *testing.T) {
	tp, d := fig1Domain(t)
	mgr := NewLieManager(DirectInjector{Router: d.Router(tp.MustNode("R3"))}, ospf.ControllerIDBase)
	lies := fig1Lies(t, tp) // fB + 2x fA

	if _, err := mgr.Apply(topo.Fig1BluePrefixName, lies); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}

	// Shrink to fB only: both fA lies are withdrawn, fB untouched.
	var fbOnly []fibbing.Lie
	for _, l := range lies {
		if l.Attach == tp.MustNode("B") {
			fbOnly = append(fbOnly, l)
		}
	}
	delta, err := mgr.Apply(topo.Fig1BluePrefixName, fbOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Withdrawn) != 2 || len(delta.Injected) != 0 || mgr.LieCount() != 1 {
		t.Fatalf("delta=%+v count=%d", delta, mgr.LieCount())
	}
	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueWeights(tp, d, "A"); len(got) != 1 || got["B"] != 1 {
		t.Fatalf("A = %v after shrink", got)
	}
	if got := blueWeights(tp, d, "B"); got["R2"] != 1 || got["R3"] != 1 {
		t.Fatalf("B = %v after shrink", got)
	}
}

func TestLieManagerRequiresControllerID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	NewLieManager(DirectInjector{}, ospf.RouterID(5))
}

func TestFrameRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_ = WriteFrame(c1, OpInject, []byte("hello"))
		_ = WriteFrame(c1, OpKeepalive, nil)
	}()
	op, payload, err := ReadFrame(c2)
	if err != nil || op != OpInject || string(payload) != "hello" {
		t.Fatalf("frame 1: %v %q %v", op, payload, err)
	}
	op, payload, err = ReadFrame(c2)
	if err != nil || op != OpKeepalive || len(payload) != 0 {
		t.Fatalf("frame 2: %v %q %v", op, payload, err)
	}
}

// TestRemoteInjection drives the full wire path: controller side encodes
// lies into frames over a pipe; the PoP side decodes and floods them.
func TestRemoteInjection(t *testing.T) {
	tp, d := fig1Domain(t)
	lies := fig1Lies(t, tp)

	c1, c2 := net.Pipe()
	defer c1.Close()

	pop := d.Router(tp.MustNode("R3"))
	done := make(chan error, 1)
	go func() {
		done <- ServePoP(c2, pop)
	}()

	inj := RemoteInjector{W: c1}
	for i, lie := range lies {
		if err := inj.Inject(lie.ToLSA(ospf.ControllerIDBase, uint32(i)+1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteFrame(c1, OpKeepalive, nil); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := <-done; err != nil {
		t.Fatalf("PoP: %v", err)
	}

	if _, err := d.RunUntilConverged(d.Scheduler().Now() + 120*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := blueWeights(tp, d, "A"); got["B"] != 1 || got["R1"] != 2 {
		t.Fatalf("A after remote injection = %v", got)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_, _ = c1.Write([]byte{0, 0, 0, 0, 0}) // zero length
	}()
	if _, _, err := ReadFrame(c2); err == nil {
		t.Fatalf("zero-length frame accepted")
	}
}
