package southbound

import (
	"fmt"
	"testing"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/topo"
)

// flakyInjector fails the Nth Inject call (1-based); failAt <= 0 never
// fails. It records every accepted LSA so tests can count compensations.
type flakyInjector struct {
	failAt   int
	calls    int
	accepted []*ospf.LSA
}

func (f *flakyInjector) Inject(l *ospf.LSA) error {
	f.calls++
	if f.failAt > 0 && f.calls == f.failAt {
		return fmt.Errorf("injector down (call %d)", f.calls)
	}
	f.accepted = append(f.accepted, l)
	return nil
}

// liveByLSID replays the accepted LSAs: the latest origination per LSID
// wins, MaxAge removes it. What remains is what the IGP would hold.
func (f *flakyInjector) liveByLSID() map[uint32]*ospf.LSA {
	live := make(map[uint32]*ospf.LSA)
	for _, l := range f.accepted {
		if cur, ok := live[l.Header.LSID]; ok && cur.Header.Seq > l.Header.Seq {
			continue
		}
		if l.Header.Age >= ospf.MaxAgeSeconds {
			delete(live, l.Header.LSID)
			continue
		}
		live[l.Header.LSID] = l
	}
	return live
}

func testLies(t *testing.T) []fibbing.Lie {
	t.Helper()
	tp := topo.Fig1(topo.Fig1Opts{})
	return fig1Lies(t, tp)
}

// TestApplyPartialFailureAtomicity: when the injector dies mid-batch, the
// lies Apply already injected in that batch must be withdrawn again
// before the error returns — the manager's bookkeeping and the replayed
// wire state both equal the pre-call state.
func TestApplyPartialFailureAtomicity(t *testing.T) {
	lies := testLies(t) // 3 lies: 1 fB + 2 fA
	for failAt := 1; failAt <= len(lies); failAt++ {
		inj := &flakyInjector{failAt: failAt}
		mgr := NewLieManager(inj, ospf.ControllerIDBase)
		if _, err := mgr.Apply(topo.Fig1BluePrefixName, lies); err == nil {
			t.Fatalf("failAt=%d: Apply succeeded despite injector failure", failAt)
		}
		if n := mgr.LieCount(); n != 0 {
			t.Fatalf("failAt=%d: %d lies half-installed after failed Apply", failAt, n)
		}
		if live := inj.liveByLSID(); len(live) != 0 {
			t.Fatalf("failAt=%d: %d fake LSAs left live on the wire", failAt, len(live))
		}
	}
}

// TestApplyWithdrawFailureRestores: a reconciliation that must withdraw
// lies fails mid-withdraw; the already-withdrawn lies are re-originated
// and the installed set stays the original one.
func TestApplyWithdrawFailureRestores(t *testing.T) {
	lies := testLies(t)
	inj := &flakyInjector{}
	mgr := NewLieManager(inj, ospf.ControllerIDBase)
	if _, err := mgr.Apply(topo.Fig1BluePrefixName, lies); err != nil {
		t.Fatal(err)
	}
	// Next two calls: first withdrawal succeeds, second fails.
	inj.failAt = inj.calls + 2
	if _, err := mgr.Apply(topo.Fig1BluePrefixName, nil); err == nil {
		t.Fatal("Apply succeeded despite injector failure")
	}
	if n := mgr.LieCount(); n != len(lies) {
		t.Fatalf("installed count = %d after failed withdraw, want %d", n, len(lies))
	}
	if live := inj.liveByLSID(); len(live) != len(lies) {
		t.Fatalf("%d fake LSAs live on the wire, want %d", len(live), len(lies))
	}
	// The manager must still be able to reconcile once the injector heals
	// (sequence numbers moved past the aborted withdrawal).
	inj.failAt = 0
	if _, err := mgr.Apply(topo.Fig1BluePrefixName, nil); err != nil {
		t.Fatal(err)
	}
	if n := mgr.LieCount(); n != 0 {
		t.Fatalf("lies not withdrawn after heal: %d", n)
	}
	if live := inj.liveByLSID(); len(live) != 0 {
		t.Fatalf("%d fake LSAs live after heal", len(live))
	}
}

// TestTransactionRollsBackAppliedPrefixes: a multi-prefix transaction
// whose second prefix fails mid-apply must restore the first prefix's
// previous lies — no half-installed multi-prefix state.
func TestTransactionRollsBackAppliedPrefixes(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	blue := fig1Lies(t, tp)
	b, r3 := tp.MustNode("B"), tp.MustNode("R3")
	green := []fibbing.Lie{{Prefix: topo.Fig1BluePrefix, Attach: b, Via: r3, Cost: 2}}

	inj := &flakyInjector{}
	mgr := NewLieManager(inj, ospf.ControllerIDBase)
	// Pre-state: "green" has one installed lie.
	if _, err := mgr.Apply("green", green); err != nil {
		t.Fatal(err)
	}
	preCalls := inj.calls

	// Transaction: replace green's lie (1 withdraw + 1 inject), then
	// install blue's 3; fail on blue's second injection.
	replacement := []fibbing.Lie{{Prefix: topo.Fig1BluePrefix, Attach: b, Via: r3, Cost: 3}}
	inj.failAt = preCalls + 2 + 2
	tx := mgr.Begin()
	if err := tx.Apply("green", replacement); err != nil {
		t.Fatalf("first prefix failed early: %v", err)
	}
	err := tx.Apply(topo.Fig1BluePrefixName, blue)
	if err == nil {
		t.Fatal("transaction succeeded despite injector failure")
	}

	// Green must be back to its pre-transaction lie, blue empty.
	got := mgr.Installed("green")
	if len(got) != 1 || got[0] != green[0] {
		t.Fatalf("green after rollback = %v, want %v", got, green)
	}
	if n := len(mgr.Installed(topo.Fig1BluePrefixName)); n != 0 {
		t.Fatalf("blue half-installed: %d lies", n)
	}
	if live := inj.liveByLSID(); len(live) != 1 {
		t.Fatalf("%d fake LSAs live, want 1 (green's original)", len(live))
	}
	// The closed transaction refuses further work.
	if err := tx.Apply("green", nil); err == nil {
		t.Fatal("closed transaction accepted Apply")
	}
}

// TestTransactionCommitDelta: a successful transaction accumulates the
// per-prefix deltas and leaves the desired state installed.
func TestTransactionCommitDelta(t *testing.T) {
	tp := topo.Fig1(topo.Fig1Opts{})
	blue := fig1Lies(t, tp)
	inj := &flakyInjector{}
	mgr := NewLieManager(inj, ospf.ControllerIDBase)

	tx := mgr.Begin()
	if err := tx.Apply(topo.Fig1BluePrefixName, blue); err != nil {
		t.Fatal(err)
	}
	delta, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Injected) != len(blue) || len(delta.Withdrawn) != 0 {
		t.Fatalf("delta = %+v", delta)
	}
	if mgr.LieCount() != len(blue) {
		t.Fatalf("installed = %d", mgr.LieCount())
	}
	if _, err := tx.Commit(); err == nil {
		t.Fatal("double Commit succeeded")
	}
}
