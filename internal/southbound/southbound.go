// Package southbound connects the Fibbing controller to the network: it
// turns computed lies into fake LSAs, originates them at the controller's
// attachment router (the point of presence, R3 in the demo), tracks what
// is installed, and reconciles towards new desired lie sets with minimal
// churn. A wire protocol (length-prefixed frames) lets the controller run
// remotely from its PoP; a direct in-process injector serves simulations.
package southbound

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/ospf"
)

// Injector abstracts "flood this LSA into the IGP".
type Injector interface {
	Inject(l *ospf.LSA) error
}

// DirectInjector floods via an in-process router (simulation path).
type DirectInjector struct {
	Router *ospf.Router
}

// Inject implements Injector.
func (d DirectInjector) Inject(l *ospf.LSA) error {
	return d.Router.OriginateForeign(l)
}

// --- Wire protocol ------------------------------------------------------

// Frame ops.
const (
	OpInject    = 1
	OpKeepalive = 2
)

// WriteFrame writes one frame: uint32 length, uint8 op, payload.
func WriteFrame(w io.Writer, op uint8, payload []byte) error {
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload))+1)
	hdr[4] = op
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (op uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > 1<<20 {
		return 0, nil, fmt.Errorf("southbound: bad frame length %d", n)
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// RemoteInjector sends LSAs over a wire session to a PoP.
type RemoteInjector struct {
	W io.Writer
}

// Inject implements Injector.
func (r RemoteInjector) Inject(l *ospf.LSA) error {
	return WriteFrame(r.W, OpInject, l.Encode())
}

// ServePoP runs the point-of-presence side: it reads frames and floods
// received LSAs through the attached router. Returns on read error/EOF.
func ServePoP(r io.Reader, router *ospf.Router) error {
	for {
		op, payload, err := ReadFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch op {
		case OpKeepalive:
			// liveness only
		case OpInject:
			lsa, err := ospf.DecodeLSA(payload)
			if err != nil {
				return fmt.Errorf("southbound: bad LSA frame: %w", err)
			}
			if err := router.OriginateForeign(lsa); err != nil {
				return err
			}
		default:
			return fmt.Errorf("southbound: unknown op %d", op)
		}
	}
}

// --- Lie lifecycle ------------------------------------------------------

type lieEntry struct {
	lsid uint32
	seq  uint32
	lie  fibbing.Lie
}

// LieManager owns the controller's live lies: it allocates LSIDs,
// manages sequence numbers, and reconciles installed lies against desired
// sets with inject/withdraw diffs (identical lies are left untouched, so
// reapplying a superset never perturbs existing paths).
type LieManager struct {
	inj Injector
	adv ospf.RouterID

	nextLSID uint32
	// installed lies per prefix name, as a multiset (duplicated lies are
	// the point of Fibbing's uneven splitting).
	installed map[string][]lieEntry
}

// NewLieManager builds a manager advertising from the given controller ID.
func NewLieManager(inj Injector, adv ospf.RouterID) *LieManager {
	if !adv.IsController() {
		panic("southbound: advertising ID must be in the controller range")
	}
	return &LieManager{inj: inj, adv: adv, installed: make(map[string][]lieEntry)}
}

// Installed returns the current lies for a prefix (copy).
func (m *LieManager) Installed(prefix string) []fibbing.Lie {
	entries := m.installed[prefix]
	out := make([]fibbing.Lie, len(entries))
	for i, e := range entries {
		out[i] = e.lie
	}
	return out
}

// LieCount returns the total number of live lies.
func (m *LieManager) LieCount() int {
	n := 0
	for _, es := range m.installed {
		n += len(es)
	}
	return n
}

// Delta is the minimal on-the-wire change one Apply performed: the lies
// it injected and the lies it withdrew. Lies present before and after are
// never re-signalled, so an empty delta means the IGP saw no traffic at
// all. It is the southbound stage of the delta pipeline: each injected or
// withdrawn lie becomes one fake-LSA change in every router's LSDB change
// log and flows from there through incremental SPF into FIB diffs.
type Delta struct {
	Injected  []fibbing.Lie
	Withdrawn []fibbing.Lie
}

// Empty reports whether the reconciliation touched the wire.
func (d Delta) Empty() bool { return len(d.Injected) == 0 && len(d.Withdrawn) == 0 }

// Apply reconciles the installed lies for one prefix towards desired:
// lies present in both stay untouched; extra installed lies are withdrawn
// (MaxAge re-origination); missing lies are injected fresh. It returns
// the delta it signalled.
func (m *LieManager) Apply(prefix string, desired []fibbing.Lie) (Delta, error) {
	cur := m.installed[prefix]

	// Multiset diff on the Lie value.
	remaining := make(map[fibbing.Lie]int, len(desired))
	for _, l := range desired {
		remaining[l]++
	}
	var keep []lieEntry
	var drop []lieEntry
	for _, e := range cur {
		if remaining[e.lie] > 0 {
			remaining[e.lie]--
			keep = append(keep, e)
		} else {
			drop = append(drop, e)
		}
	}
	var delta Delta
	// Withdraw removed lies.
	for _, e := range drop {
		lsa := e.lie.ToLSA(m.adv, e.lsid, e.seq+1)
		lsa.Header.Age = ospf.MaxAgeSeconds
		if err := m.inj.Inject(lsa); err != nil {
			return delta, fmt.Errorf("southbound: withdraw %v: %w", e.lie, err)
		}
		delta.Withdrawn = append(delta.Withdrawn, e.lie)
	}
	// Inject new lies, deterministically ordered.
	var missing []fibbing.Lie
	for l, n := range remaining {
		for i := 0; i < n; i++ {
			missing = append(missing, l)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return lieLess(missing[i], missing[j]) })
	for _, l := range missing {
		m.nextLSID++
		e := lieEntry{lsid: m.nextLSID, seq: 1, lie: l}
		if err := m.inj.Inject(l.ToLSA(m.adv, e.lsid, e.seq)); err != nil {
			return delta, fmt.Errorf("southbound: inject %v: %w", l, err)
		}
		keep = append(keep, e)
		delta.Injected = append(delta.Injected, l)
	}
	if len(keep) == 0 {
		delete(m.installed, prefix)
	} else {
		m.installed[prefix] = keep
	}
	return delta, nil
}

// WithdrawAll flushes every live lie (controller shutdown, as Fibbing
// prescribes: the network falls back to pure IGP routing).
func (m *LieManager) WithdrawAll() error {
	prefixes := make([]string, 0, len(m.installed))
	for prefix := range m.installed {
		prefixes = append(prefixes, prefix)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		if _, err := m.Apply(prefix, nil); err != nil {
			return err
		}
	}
	return nil
}

func lieLess(a, b fibbing.Lie) bool {
	if a.Attach != b.Attach {
		return a.Attach < b.Attach
	}
	if a.Via != b.Via {
		return a.Via < b.Via
	}
	return a.Cost < b.Cost
}
