// Package southbound connects the Fibbing controller to the network: it
// turns computed lies into fake LSAs, originates them at the controller's
// attachment router (the point of presence, R3 in the demo), tracks what
// is installed, and reconciles towards new desired lie sets with minimal
// churn. A wire protocol (length-prefixed frames) lets the controller run
// remotely from its PoP; a direct in-process injector serves simulations.
package southbound

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/ospf"
)

// Injector abstracts "flood this LSA into the IGP".
type Injector interface {
	Inject(l *ospf.LSA) error
}

// DirectInjector floods via an in-process router (simulation path).
type DirectInjector struct {
	Router *ospf.Router
}

// Inject implements Injector.
func (d DirectInjector) Inject(l *ospf.LSA) error {
	return d.Router.OriginateForeign(l)
}

// --- Wire protocol ------------------------------------------------------

// Frame ops.
const (
	OpInject    = 1
	OpKeepalive = 2
)

// WriteFrame writes one frame: uint32 length, uint8 op, payload.
func WriteFrame(w io.Writer, op uint8, payload []byte) error {
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload))+1)
	hdr[4] = op
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (op uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > 1<<20 {
		return 0, nil, fmt.Errorf("southbound: bad frame length %d", n)
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// RemoteInjector sends LSAs over a wire session to a PoP.
type RemoteInjector struct {
	W io.Writer
}

// Inject implements Injector.
func (r RemoteInjector) Inject(l *ospf.LSA) error {
	return WriteFrame(r.W, OpInject, l.Encode())
}

// ServePoP runs the point-of-presence side: it reads frames and floods
// received LSAs through the attached router. Returns on read error/EOF.
func ServePoP(r io.Reader, router *ospf.Router) error {
	for {
		op, payload, err := ReadFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch op {
		case OpKeepalive:
			// liveness only
		case OpInject:
			lsa, err := ospf.DecodeLSA(payload)
			if err != nil {
				return fmt.Errorf("southbound: bad LSA frame: %w", err)
			}
			if err := router.OriginateForeign(lsa); err != nil {
				return err
			}
		default:
			return fmt.Errorf("southbound: unknown op %d", op)
		}
	}
}

// --- Lie lifecycle ------------------------------------------------------

type lieEntry struct {
	lsid uint32
	seq  uint32
	lie  fibbing.Lie
}

// LieManager owns the controller's live lies: it allocates LSIDs,
// manages sequence numbers, and reconciles installed lies against desired
// sets with inject/withdraw diffs (identical lies are left untouched, so
// reapplying a superset never perturbs existing paths).
type LieManager struct {
	inj Injector
	adv ospf.RouterID

	nextLSID uint32
	// installed lies per prefix name, as a multiset (duplicated lies are
	// the point of Fibbing's uneven splitting).
	installed map[string][]lieEntry
}

// NewLieManager builds a manager advertising from the given controller ID.
func NewLieManager(inj Injector, adv ospf.RouterID) *LieManager {
	if !adv.IsController() {
		panic("southbound: advertising ID must be in the controller range")
	}
	return &LieManager{inj: inj, adv: adv, installed: make(map[string][]lieEntry)}
}

// Installed returns the current lies for a prefix (copy).
func (m *LieManager) Installed(prefix string) []fibbing.Lie {
	entries := m.installed[prefix]
	out := make([]fibbing.Lie, len(entries))
	for i, e := range entries {
		out[i] = e.lie
	}
	return out
}

// InstalledAll snapshots every prefix's installed lies. Prefixes without
// live lies are absent from the map.
func (m *LieManager) InstalledAll() map[string][]fibbing.Lie {
	out := make(map[string][]fibbing.Lie, len(m.installed))
	for prefix := range m.installed {
		out[prefix] = m.Installed(prefix)
	}
	return out
}

// InstalledPrefixes returns the sorted names of prefixes with live lies.
func (m *LieManager) InstalledPrefixes() []string {
	out := make([]string, 0, len(m.installed))
	for prefix := range m.installed {
		out = append(out, prefix)
	}
	slices.Sort(out)
	return out
}

// LieCount returns the total number of live lies.
func (m *LieManager) LieCount() int {
	n := 0
	for _, es := range m.installed {
		n += len(es)
	}
	return n
}

// Delta is the minimal on-the-wire change one Apply performed: the lies
// it injected and the lies it withdrew. Lies present before and after are
// never re-signalled, so an empty delta means the IGP saw no traffic at
// all. It is the southbound stage of the delta pipeline: each injected or
// withdrawn lie becomes one fake-LSA change in every router's LSDB change
// log and flows from there through incremental SPF into FIB diffs.
type Delta struct {
	Injected  []fibbing.Lie
	Withdrawn []fibbing.Lie
}

// Empty reports whether the reconciliation touched the wire.
func (d Delta) Empty() bool { return len(d.Injected) == 0 && len(d.Withdrawn) == 0 }

// Apply reconciles the installed lies for one prefix towards desired:
// lies present in both stay untouched; extra installed lies are withdrawn
// (MaxAge re-origination); missing lies are injected fresh. It returns
// the delta it signalled.
//
// Apply is atomic per prefix: when the injector fails mid-batch, the lies
// it already signalled in this call are compensated (fresh injections are
// MaxAged out, withdrawals are re-originated) before the error returns,
// so a failed Apply leaves the prefix's live lie set exactly as it was.
// If a compensation itself fails, the bookkeeping tracks what is actually
// live on the wire and the returned error reports both failures.
func (m *LieManager) Apply(prefix string, desired []fibbing.Lie) (Delta, error) {
	cur := m.installed[prefix]

	// Multiset diff on the Lie value.
	remaining := make(map[fibbing.Lie]int, len(desired))
	for _, l := range desired {
		remaining[l]++
	}
	var keep []lieEntry
	var drop []lieEntry
	for _, e := range cur {
		if remaining[e.lie] > 0 {
			remaining[e.lie]--
			keep = append(keep, e)
		} else {
			drop = append(drop, e)
		}
	}

	var withdrawn []lieEntry // drops signalled so far (seq at their MaxAge origination)
	var injected []lieEntry  // fresh lies signalled so far
	// fail unwinds the lies this call already signalled, in reverse, and
	// records whatever actually ends up live: kept entries, drops whose
	// withdrawal never went out, compensated state for the rest.
	fail := func(cause error) (Delta, error) {
		final := append([]lieEntry(nil), keep...)
		final = append(final, drop[len(withdrawn):]...) // never signalled: still live
		var rollbackErrs []error
		for i := len(injected) - 1; i >= 0; i-- {
			e := injected[i]
			lsa := e.lie.ToLSA(m.adv, e.lsid, e.seq+1)
			lsa.Header.Age = ospf.MaxAgeSeconds
			if err := m.inj.Inject(lsa); err != nil {
				rollbackErrs = append(rollbackErrs, err)
				final = append(final, e) // compensation failed: the lie is live
			}
		}
		for i := len(withdrawn) - 1; i >= 0; i-- {
			e := withdrawn[i]
			e.seq++ // the fresh origination must beat the MaxAge LSA
			if err := m.inj.Inject(e.lie.ToLSA(m.adv, e.lsid, e.seq)); err != nil {
				rollbackErrs = append(rollbackErrs, err)
				continue // stays withdrawn
			}
			final = append(final, e)
		}
		m.setInstalled(prefix, final)
		if len(rollbackErrs) > 0 {
			return Delta{}, fmt.Errorf("%w (rollback also failed: %v)", cause, rollbackErrs)
		}
		return Delta{}, cause
	}

	// Withdraw removed lies.
	for _, e := range drop {
		lsa := e.lie.ToLSA(m.adv, e.lsid, e.seq+1)
		lsa.Header.Age = ospf.MaxAgeSeconds
		if err := m.inj.Inject(lsa); err != nil {
			return fail(fmt.Errorf("southbound: withdraw %v: %w", e.lie, err))
		}
		e.seq++
		withdrawn = append(withdrawn, e)
	}
	// Inject new lies, deterministically ordered.
	var missing []fibbing.Lie
	for l, n := range remaining {
		for i := 0; i < n; i++ {
			missing = append(missing, l)
		}
	}
	slices.SortFunc(missing, lieCompare)
	for _, l := range missing {
		lsid := m.nextLSID + 1
		e := lieEntry{lsid: lsid, seq: 1, lie: l}
		if err := m.inj.Inject(l.ToLSA(m.adv, e.lsid, e.seq)); err != nil {
			return fail(fmt.Errorf("southbound: inject %v: %w", l, err))
		}
		m.nextLSID = lsid
		injected = append(injected, e)
	}
	keep = append(keep, injected...)
	m.setInstalled(prefix, keep)
	var delta Delta
	for _, e := range withdrawn {
		delta.Withdrawn = append(delta.Withdrawn, e.lie)
	}
	for _, e := range injected {
		delta.Injected = append(delta.Injected, e.lie)
	}
	return delta, nil
}

func (m *LieManager) setInstalled(prefix string, entries []lieEntry) {
	if len(entries) == 0 {
		delete(m.installed, prefix)
		return
	}
	m.installed[prefix] = entries
}

// Transaction is an all-or-nothing commit of a multi-prefix lie set: each
// Apply reconciles one prefix, and a failure rolls every prefix the
// transaction already touched back to its pre-transaction lies. The
// controller's Planner commits whole Plans through it so a mid-apply
// injector failure can never leave a half-installed multi-prefix state.
type Transaction struct {
	m      *LieManager
	prev   map[string][]fibbing.Lie
	order  []string
	delta  Delta
	closed bool
}

// Begin opens a transaction on the manager. Transactions are not
// concurrent-safe with each other or with direct Apply calls.
func (m *LieManager) Begin() *Transaction {
	return &Transaction{m: m, prev: make(map[string][]fibbing.Lie)}
}

// Apply reconciles one prefix towards desired (nil/empty withdraws all of
// its lies). On an injector error the transaction rolls back every prefix
// it touched — including this one, whose per-prefix Apply already
// self-compensated — and returns the error; the transaction is closed.
func (t *Transaction) Apply(prefix string, desired []fibbing.Lie) error {
	if t.closed {
		return fmt.Errorf("southbound: transaction already closed")
	}
	if _, seen := t.prev[prefix]; !seen {
		t.prev[prefix] = t.m.Installed(prefix)
		t.order = append(t.order, prefix)
	}
	delta, err := t.m.Apply(prefix, desired)
	t.delta.Injected = append(t.delta.Injected, delta.Injected...)
	t.delta.Withdrawn = append(t.delta.Withdrawn, delta.Withdrawn...)
	if err != nil {
		if rerr := t.rollback(); rerr != nil {
			return fmt.Errorf("%w (transaction rollback: %v)", err, rerr)
		}
		return err
	}
	return nil
}

// Commit finalises the transaction and returns the accumulated on-wire
// delta. Committing a transaction that already failed (auto-rollback) or
// was rolled back returns an error: the work was reverted, not applied.
// Further calls on the transaction fail.
func (t *Transaction) Commit() (Delta, error) {
	if t.closed {
		return Delta{}, fmt.Errorf("southbound: transaction already closed")
	}
	t.closed = true
	return t.delta, nil
}

// Rollback restores every touched prefix to its pre-transaction lie set
// and closes the transaction.
func (t *Transaction) Rollback() error {
	if t.closed {
		return fmt.Errorf("southbound: transaction already closed")
	}
	return t.rollback()
}

func (t *Transaction) rollback() error {
	t.closed = true
	t.delta = Delta{}
	var errs []error
	for i := len(t.order) - 1; i >= 0; i-- {
		prefix := t.order[i]
		if _, err := t.m.Apply(prefix, t.prev[prefix]); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("southbound: rollback: %v", errs)
	}
	return nil
}

// WithdrawAll flushes every live lie (controller shutdown, as Fibbing
// prescribes: the network falls back to pure IGP routing).
func (m *LieManager) WithdrawAll() error {
	prefixes := make([]string, 0, len(m.installed))
	for prefix := range m.installed {
		prefixes = append(prefixes, prefix)
	}
	slices.Sort(prefixes)
	for _, prefix := range prefixes {
		if _, err := m.Apply(prefix, nil); err != nil {
			return err
		}
	}
	return nil
}

func lieCompare(a, b fibbing.Lie) int {
	if c := cmp.Compare(a.Attach, b.Attach); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Via, b.Via); c != 0 {
		return c
	}
	return cmp.Compare(a.Cost, b.Cost)
}
