package fibbing_test

// One benchmark per figure and quantitative claim of the paper, driving
// the same code paths as cmd/experiments. Shape checks are enforced by
// the experiments package itself (Result.Check); a benchmark fails if its
// experiment stops reproducing.

import (
	"fmt"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"fibbing.net/fibbing/internal/controller"
	"fibbing.net/fibbing/internal/event"
	"fibbing.net/fibbing/internal/experiments"
	"fibbing.net/fibbing/internal/fib"
	"fibbing.net/fibbing/internal/fibbing"
	"fibbing.net/fibbing/internal/netsim"
	"fibbing.net/fibbing/internal/ospf"
	"fibbing.net/fibbing/internal/qoe"
	"fibbing.net/fibbing/internal/scenarios"
	"fibbing.net/fibbing/internal/spf"
	"fibbing.net/fibbing/internal/te"
	"fibbing.net/fibbing/internal/topo"
)

func runChecked(b *testing.B, f func() (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Check) > 0 {
			b.Fatalf("%s: %v", r.ID, r.Check)
		}
	}
}

// BenchmarkFig1aShortestPaths regenerates Figure 1a (IGP shortest paths
// overlapping on B-R2-C).
func BenchmarkFig1aShortestPaths(b *testing.B) { runChecked(b, experiments.Fig1a) }

// BenchmarkFig1bOverload regenerates Figure 1b (the surge loads B-R2 and
// R2-C with 200 relative units).
func BenchmarkFig1bOverload(b *testing.B) { runChecked(b, experiments.Fig1b) }

// BenchmarkFig1cAugmentation regenerates Figure 1c (three lies: fB cost 2
// via R3, two fA cost 3 via R1).
func BenchmarkFig1cAugmentation(b *testing.B) { runChecked(b, experiments.Fig1c) }

// BenchmarkFig1dSplits regenerates Figure 1d (uneven splits cut the max
// load from 200 to 66.7).
func BenchmarkFig1dSplits(b *testing.B) { runChecked(b, experiments.Fig1d) }

// BenchmarkFig2Timeseries regenerates Figure 2 (throughput over time on
// A-R1, B-R2, B-R3 under the 1/+30/+31 schedule) with the controller.
func BenchmarkFig2Timeseries(b *testing.B) {
	runChecked(b, func() (*experiments.Result, error) {
		return experiments.Fig2(true, 60*time.Second)
	})
}

// BenchmarkFig2NoController regenerates the counterfactual run (the
// bottleneck saturates, flows starve).
func BenchmarkFig2NoController(b *testing.B) {
	runChecked(b, func() (*experiments.Result, error) {
		return experiments.Fig2(false, 60*time.Second)
	})
}

// BenchmarkDemoQoE regenerates the demo's observable result: smooth
// playback with the controller, stutter without.
func BenchmarkDemoQoE(b *testing.B) {
	runChecked(b, func() (*experiments.Result, error) {
		return experiments.DemoQoE(60 * time.Second)
	})
}

// BenchmarkOverheadVsRSVPTE regenerates the §2 overhead comparison
// (lies + plain IP vs tunnels + signalling + encapsulation).
func BenchmarkOverheadVsRSVPTE(b *testing.B) { runChecked(b, experiments.OverheadVsRSVPTE) }

// BenchmarkMinMaxOptimality regenerates the §2 optimality claim (Fibbing
// realises the LP optimum; ECMP and weight search cannot).
func BenchmarkMinMaxOptimality(b *testing.B) { runChecked(b, experiments.MinMaxOptimality) }

// BenchmarkWeightChangeVsLie regenerates the §1 claim (weight changes are
// network-wide reconvergence events; a lie is one LSA).
func BenchmarkWeightChangeVsLie(b *testing.B) { runChecked(b, experiments.WeightChangeVsLie) }

// BenchmarkPerDestinationIsolation regenerates the §2 granularity claim
// (lies for one prefix leave other prefixes untouched).
func BenchmarkPerDestinationIsolation(b *testing.B) {
	runChecked(b, experiments.PerDestinationIsolation)
}

// BenchmarkABRExtension regenerates the adaptive-bitrate extension (with
// ABR, Fibbing's gain shows as delivered bitrate instead of stalls).
func BenchmarkABRExtension(b *testing.B) {
	runChecked(b, func() (*experiments.Result, error) {
		return experiments.ABRExtension(60 * time.Second)
	})
}

// BenchmarkReactionLatency measures the control loop's reaction time.
// "surge" regenerates the paper's reaction timeline (surge -> decision ->
// full delivery per wave). The "failover" pair runs the fig1 fast-failover
// cell end to end under each detection path — BFD liveness + standby cache
// against SNMP-poll/IGP-timescale detection — and reports the
// failure-to-commit latency as commit-latency-ms next to the usual wall
// ns/op. Each iteration asserts the failure was detected and a plan
// committed, so the gated benchmark doubles as a regression tripwire for
// the failover pipeline (the way BenchmarkPlannerGbit guards the
// numerics).
func BenchmarkReactionLatency(b *testing.B) {
	b.Run("surge", func(b *testing.B) {
		runChecked(b, func() (*experiments.Result, error) {
			return experiments.ReactionLatency(60 * time.Second)
		})
	})
	base := scenarios.FailoverSpecs()[0] // fig1 steady/hotlink
	for _, mode := range []struct {
		name string
		bfd  bool
	}{{"failover/bfd", true}, {"failover/snmp", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			spec := base
			if !mode.bfd {
				spec.BFD = false
				spec.StandbyK = 0
			}
			var latency time.Duration
			for i := 0; i < b.N; i++ {
				rep, err := scenarios.Run(spec, true)
				if err != nil {
					b.Fatal(err)
				}
				if rep.FailureAt < 0 {
					b.Fatal("failure schedule never fired")
				}
				if rep.FailoverCommitAt < 0 {
					b.Fatal("no plan committed after the failure")
				}
				if mode.bfd && rep.BFDLinkDowns == 0 {
					b.Fatal("BFD never detected the failure")
				}
				latency = rep.FailoverLatency
			}
			b.ReportMetric(float64(latency)/float64(time.Millisecond), "commit-latency-ms")
		})
	}
}

// --- Ablation benchmarks for DESIGN.md's design choices -----------------

// BenchmarkECMPHashBalance measures the statistical quality of the
// weighted per-flow hash (design choice: FNV-1a + avalanche finalizer).
func BenchmarkECMPHashBalance(b *testing.B) {
	table := fib.NewTable(1)
	if err := table.Install(fib.Route{
		Prefix: topo.Fig1BluePrefix,
		NextHops: []fib.NextHop{
			{Node: 1, Weight: 2},
			{Node: 2, Weight: 1},
		},
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	worst := 0.0
	for i := 0; i < b.N; i++ {
		count := 0
		const flows = 4096
		for f := 0; f < flows; f++ {
			key := fib.FlowKey{
				Src:     ospf.Loopback(0),
				Dst:     ospf.HostAddr(topo.Fig1BluePrefix, f),
				SrcPort: uint16(f), DstPort: 8080, Proto: 6,
			}
			nh, _, _ := table.Select(key.Dst, key)
			if nh.Node == 1 {
				count++
			}
		}
		dev := float64(count)/flows - 2.0/3.0
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
		if dev > 0.05 {
			b.Fatalf("weighted hash deviation %.3f from 2/3", dev)
		}
	}
	b.ReportMetric(worst, "worst-split-deviation")
}

// BenchmarkRatioApproximationSweep measures the quantisation error of
// split ratios across denominator bounds (design choice: bounded ECMP
// weight denominators).
func BenchmarkRatioApproximationSweep(b *testing.B) {
	targets := [][]float64{
		{1.0 / 3, 2.0 / 3}, {0.37, 0.63}, {0.1, 0.2, 0.7}, {0.05, 0.95},
	}
	for _, denom := range []int{4, 8, 16, 32} {
		denom := denom
		b.Run(fmt.Sprintf("denom=%d", denom), func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				for _, tgt := range targets {
					w, err := fibbing.ApproxWeights(tgt, denom)
					if err != nil {
						b.Fatal(err)
					}
					if e := fibbing.WeightsError(w, tgt); e > worst {
						worst = e
					}
				}
			}
			b.ReportMetric(worst, "worst-ratio-error")
		})
	}
}

// BenchmarkAugmentationStrategies compares the lie count and cost of the
// two augmentation algorithms on the Figure 1 requirement (design choice:
// equal-cost add-paths vs global pin-all + reduction).
func BenchmarkAugmentationStrategies(b *testing.B) {
	tp := topo.Fig1(topo.Fig1Opts{})
	dag := fibbing.Fig1DAG(tp)
	b.Run("add-paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aug, err := fibbing.AugmentAddPaths(tp, topo.Fig1BluePrefixName, dag)
			if err != nil {
				b.Fatal(err)
			}
			if aug.LieCount() != 3 {
				b.Fatalf("lies = %d", aug.LieCount())
			}
		}
	})
	b.Run("pin-all-reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aug, err := fibbing.AugmentPinAll(tp, topo.Fig1BluePrefixName, dag)
			if err != nil {
				b.Fatal(err)
			}
			red, err := fibbing.ReduceLies(tp, topo.Fig1BluePrefixName, aug, dag)
			if err != nil {
				b.Fatal(err)
			}
			if red.LieCount() >= aug.LieCount() {
				b.Fatalf("no reduction: %d -> %d", aug.LieCount(), red.LieCount())
			}
		}
	})
}

// BenchmarkLPScaling measures min-max LP solve time as topology size
// grows (design choice: dense two-phase simplex on stdlib only).
func BenchmarkLPScaling(b *testing.B) {
	for _, nodes := range []int{8, 16, 24} {
		nodes := nodes
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			tp := topo.RandomConnected(topo.RandomOpts{
				Nodes: nodes, Degree: 3, MaxWeight: 5, Prefixes: 2,
				Capacity: 10e6, Seed: int64(nodes),
			})
			demands := topo.RandomDemands(tp, 6, 1e6, 3e6, int64(nodes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := te.SolveMinMax(tp, demands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Delta-pipeline benchmarks ------------------------------------------

// BenchmarkIncrementalVsFull measures the cost of reacting to a single
// link-weight change across the topology zoo: recompute every router's
// SPF tree, either from scratch (full Dijkstra per router — the
// pre-delta-pipeline behaviour) or by patching the previous trees with
// spf.Incremental. The committed baseline records the speedup the CI
// bench gate protects (the acceptance bar is >= 5x on fattree8).
func BenchmarkIncrementalVsFull(b *testing.B) {
	cases := []struct {
		name  string
		build func() *topo.Topology
		// reps repeats the all-routers recompute inside one op so a
		// single -benchtime 1x shot (the committed baseline) is long
		// enough to time reliably. Identical on both sides, so the
		// full/incremental ratio is unaffected.
		reps int
	}{
		{"fig1", func() *topo.Topology { return topo.Fig1(topo.Fig1Opts{}) }, 500},
		{"abilene", func() *topo.Topology { return topo.Abilene(10e6, time.Millisecond) }, 200},
		{"fattree8", func() *topo.Topology {
			return topo.FatTree(topo.FatTreeOpts{K: 8, Capacity: 10e6, MaxWeight: 3, Seed: 2})
		}, 5},
		{"ring64", func() *topo.Topology { return topo.Ring(topo.RingOpts{N: 64, Capacity: 10e6, Chords: 4, Seed: 1}) }, 20},
		{"waxman200", func() *topo.Topology {
			return topo.Waxman(topo.WaxmanOpts{Nodes: 200, Capacity: 10e6, MaxWeight: 5, Seed: 7})
		}, 1},
	}
	for _, tc := range cases {
		tc := tc
		tp := tc.build()
		skip := spf.HostSkip(tp)
		var routers []topo.NodeID
		for _, n := range tp.Nodes() {
			if !n.Host {
				routers = append(routers, n.ID)
			}
		}
		// Previous trees, computed on the unmodified graph.
		before := spf.FromTopology(tp)
		prev := make(map[topo.NodeID]*spf.Tree, len(routers))
		for _, src := range routers {
			prev[src] = spf.Compute(before, src, skip)
		}
		// The change: bump one core link's weight (both directions).
		var link topo.Link
		for _, l := range tp.Links() {
			if !tp.Node(l.From).Host && !tp.Node(l.To).Host {
				link = l
				break
			}
		}
		tp.SetWeight(link.ID, link.Weight+1)
		if link.Reverse != topo.NoLink {
			tp.SetWeight(link.Reverse, link.Weight+1)
		}
		after := spf.FromTopology(tp)
		changes := []spf.GraphChange{
			{From: link.From, To: link.To},
			{From: link.To, To: link.From},
		}

		b.Run(tc.name+"/full", func(b *testing.B) {
			for _, src := range routers {
				spf.Compute(after, src, skip) // warm allocator + caches
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < tc.reps; r++ {
					for _, src := range routers {
						spf.Compute(after, src, skip)
					}
				}
			}
		})
		b.Run(tc.name+"/incremental", func(b *testing.B) {
			for _, src := range routers {
				spf.Incremental(after, prev[src], changes, skip) // warm up
			}
			b.ResetTimer()
			fulls := 0
			for i := 0; i < b.N; i++ {
				for r := 0; r < tc.reps; r++ {
					for _, src := range routers {
						_, _, full := spf.Incremental(after, prev[src], changes, skip)
						if full {
							fulls++
						}
					}
				}
			}
			b.ReportMetric(float64(fulls)/float64(b.N*tc.reps), "fallbacks/op")
		})
	}
}

// BenchmarkReshareIncremental measures the aggregate traffic plane's
// delta path at viewer scale: a diamond network carrying 1k/10k/100k
// same-rate viewers (two ECMP path-classes). "join" is the incremental
// op — one flow joins and leaves, re-solving only the dirty
// bottleneck-dependency component in O(aggregates). "full" forces the
// pre-aggregation behaviour — SetTable invalidates everything, so every
// viewer is re-traced and the solve runs globally. The committed baseline
// records the gap the CI bench gate protects (the acceptance bar is a
// >= 10x join-vs-full advantage at 100k viewers).
func BenchmarkReshareIncremental(b *testing.B) {
	buildNet := func(viewers int) (*netsim.Network, *event.Scheduler, topo.NodeID, *fib.Table) {
		tp := topo.New()
		s := tp.AddNode("s")
		u := tp.AddNode("u")
		v := tp.AddNode("v")
		d := tp.AddNode("d")
		lsu, _ := tp.AddLink(s, u, 1, topo.LinkOpts{Capacity: 10e9})
		lsv, _ := tp.AddLink(s, v, 1, topo.LinkOpts{Capacity: 10e9})
		lud, _ := tp.AddLink(u, d, 1, topo.LinkOpts{Capacity: 10e9})
		lvd, _ := tp.AddLink(v, d, 1, topo.LinkOpts{Capacity: 10e9})
		pfx := topo.Fig1BluePrefix
		tp.AddPrefix(pfx, "crowd", topo.Attachment{Node: d})

		sched := event.NewScheduler()
		net := netsim.New(tp, sched, time.Second)
		net.DropSeries = true
		ts := fib.NewTable(s)
		tu := fib.NewTable(u)
		tv := fib.NewTable(v)
		td := fib.NewTable(d)
		for _, err := range []error{
			ts.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{
				{Node: u, Link: lsu, Weight: 1}, {Node: v, Link: lsv, Weight: 1}}}),
			tu.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: d, Link: lud, Weight: 1}}}),
			tv.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: d, Link: lvd, Weight: 1}}}),
			td.Install(fib.Route{Prefix: pfx, Local: true}),
		} {
			if err != nil {
				b.Fatal(err)
			}
		}
		net.SetTable(s, ts)
		net.SetTable(u, tu)
		net.SetTable(v, tv)
		net.SetTable(d, td)
		rate := 1.7 * 10e9 / float64(viewers)
		for i := 0; i < viewers; i++ {
			key := fib.FlowKey{
				Src:     ospf.Loopback(s),
				Dst:     ospf.HostAddr(pfx, i),
				SrcPort: uint16(10000 + i%50000), DstPort: 8080, Proto: 6,
			}
			net.AddFlow(s, key, rate)
		}
		sched.RunUntil(time.Second)
		return net, sched, s, ts
	}
	greedyKey := fib.FlowKey{
		Src: ospf.Loopback(0), Dst: ospf.HostAddr(topo.Fig1BluePrefix, 0),
		SrcPort: 1, DstPort: 8080, Proto: 6,
	}
	for _, viewers := range []int{1000, 10_000, 100_000} {
		viewers := viewers
		b.Run(fmt.Sprintf("viewers=%d/join", viewers), func(b *testing.B) {
			net, sched, s, _ := buildNet(viewers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := net.AddFlow(s, greedyKey, 0)
				sched.RunUntil(sched.Now()) // fire the recompute: incremental reshare
				net.RemoveFlow(id)
				sched.RunUntil(sched.Now())
			}
			b.StopTimer()
			if st := net.Stats(); st.ReshareIncremental == 0 {
				b.Fatal("join churn never ran incrementally")
			}
		})
		b.Run(fmt.Sprintf("viewers=%d/full", viewers), func(b *testing.B) {
			net, sched, s, ts := buildNet(viewers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.SetTable(s, ts) // invalidate everything: per-viewer re-trace + global solve
				sched.RunUntil(sched.Now())
			}
		})
	}

	// Parallel component path: 8 disjoint diamonds, 100k viewers total,
	// ~250 distinct rate classes per diamond (so each component's
	// progressive filling runs hundreds of freeze rounds — the work the
	// pool amortises). One churn flow joins and leaves per diamond per op:
	// the dirty closure splits into 8 independent components, which the
	// reshare fans across the worker pool. The rates, the partition, and
	// the component count are identical at every width; only wall-clock
	// changes, and the committed baseline records the workers=4-vs-1 gap
	// the CI bench gate protects.
	const diamonds = 8
	buildMulti := func() (*netsim.Network, *event.Scheduler, []topo.NodeID, []fib.FlowKey) {
		const viewers = 100_000
		tp := topo.New()
		sched := event.NewScheduler()
		type diamond struct {
			s   topo.NodeID
			pfx netip.Prefix
		}
		var ds []diamond
		var tables []func(*netsim.Network)
		for di := 0; di < diamonds; di++ {
			s := tp.AddNode(fmt.Sprintf("s%d", di))
			u := tp.AddNode(fmt.Sprintf("u%d", di))
			v := tp.AddNode(fmt.Sprintf("v%d", di))
			d := tp.AddNode(fmt.Sprintf("d%d", di))
			lsu, _ := tp.AddLink(s, u, 1, topo.LinkOpts{Capacity: 10e9})
			lsv, _ := tp.AddLink(s, v, 1, topo.LinkOpts{Capacity: 10e9})
			lud, _ := tp.AddLink(u, d, 1, topo.LinkOpts{Capacity: 10e9})
			lvd, _ := tp.AddLink(v, d, 1, topo.LinkOpts{Capacity: 10e9})
			pfx := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", 100+di))
			tp.AddPrefix(pfx, fmt.Sprintf("crowd%d", di), topo.Attachment{Node: d})
			ds = append(ds, diamond{s: s, pfx: pfx})
			tables = append(tables, func(net *netsim.Network) {
				ts := fib.NewTable(s)
				tu := fib.NewTable(u)
				tv := fib.NewTable(v)
				td := fib.NewTable(d)
				for _, err := range []error{
					ts.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{
						{Node: u, Link: lsu, Weight: 1}, {Node: v, Link: lsv, Weight: 1}}}),
					tu.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: d, Link: lud, Weight: 1}}}),
					tv.Install(fib.Route{Prefix: pfx, NextHops: []fib.NextHop{{Node: d, Link: lvd, Weight: 1}}}),
					td.Install(fib.Route{Prefix: pfx, Local: true}),
				} {
					if err != nil {
						b.Fatal(err)
					}
				}
				net.SetTable(s, ts)
				net.SetTable(u, tu)
				net.SetTable(v, tv)
				net.SetTable(d, td)
			})
		}
		net := netsim.New(tp, sched, time.Second)
		net.DropSeries = true
		for _, install := range tables {
			install(net)
		}
		perDiamond := viewers / diamonds
		base := 1.7 * 10e9 / float64(perDiamond)
		ingresses := make([]topo.NodeID, diamonds)
		churnKeys := make([]fib.FlowKey, diamonds)
		for di, dm := range ds {
			ingresses[di] = dm.s
			churnKeys[di] = fib.FlowKey{
				Src: ospf.Loopback(dm.s), Dst: ospf.HostAddr(dm.pfx, 0),
				SrcPort: 1, DstPort: 8080, Proto: 6,
			}
			for i := 0; i < perDiamond; i++ {
				key := fib.FlowKey{
					Src:     ospf.Loopback(dm.s),
					Dst:     ospf.HostAddr(dm.pfx, i+1),
					SrcPort: uint16(10000 + i%50000), DstPort: 8080, Proto: 6,
				}
				// ~250 rate classes straddling the fair share.
				net.AddFlow(dm.s, key, base*(0.5+float64(i%250)/125))
			}
		}
		sched.RunUntil(time.Second)
		return net, sched, ingresses, churnKeys
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("viewers=100000/components/workers=%d", workers), func(b *testing.B) {
			net, sched, ingresses, churnKeys := buildMulti()
			sched.SetWorkers(workers)
			// One untimed warm-up churn cycle, then retire the setup
			// garbage (100k flow inserts): with -benchtime 1x a GC
			// assist landing inside the single timed op would swamp the
			// reshare being measured.
			churn := func() {
				ids := make([]netsim.FlowID, diamonds)
				for di := range ingresses {
					ids[di] = net.AddFlow(ingresses[di], churnKeys[di], 0)
				}
				sched.RunUntil(sched.Now()) // one recompute: 8 dirty components
				for _, id := range ids {
					net.RemoveFlow(id)
				}
				sched.RunUntil(sched.Now())
			}
			churn()
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn()
			}
			b.StopTimer()
			st := net.Stats()
			if st.ReshareIncremental == 0 {
				b.Fatal("component churn never ran incrementally")
			}
			if st.ReshareComponents < uint64(diamonds) {
				b.Fatalf("components = %d, want >= %d per solve", st.ReshareComponents, diamonds)
			}
		})
	}
}

// --- Planner benchmarks -------------------------------------------------

// BenchmarkPlanner times the controller's strategy fan-out: all stock
// strategies proposing concurrently plus scoring, on the paper's gadget
// and a fat-tree fabric. This is the per-alarm control-loop cost.
func BenchmarkPlanner(b *testing.B) {
	type plannerCase struct {
		name    string
		tp      *topo.Topology
		demands []topo.Demand
	}
	fig1 := topo.Fig1(topo.Fig1Opts{})
	ft := topo.FatTree(topo.FatTreeOpts{K: 4, Capacity: 10e6, MaxWeight: 3, Seed: 1})
	cases := []plannerCase{
		{"fig1", fig1, topo.Fig1Demands(fig1, 15.5e6)},
		{"fattree4", ft, topo.RandomDemands(ft, 4, 3e6, 9e6, 1)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			loads, err := te.IGPLoads(tc.tp, tc.demands)
			if err != nil {
				b.Fatal(err)
			}
			alarm, ok := controller.HottestLinkAlarm(tc.tp, loads)
			if !ok {
				b.Fatal("no capacitated link")
			}
			ctx := controller.AnalyticPlanContext(tc.tp, tc.demands, nil,
				controller.AlarmEvent(alarm), controller.Config{})
			planner := controller.NewPlanner()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, errs := planner.Plan(ctx); len(errs) > 0 {
					b.Fatal(errs)
				}
			}
		})
	}
}

// BenchmarkPlannerGbit times the strategy fan-out at production traffic
// magnitudes — Abilene at 1 Gbit/s and 10 Gbit/s uniform capacity with
// proportional demands. Before the planner numerics went scale-invariant
// this configuration was the ROADMAP ceiling (alarms fired, no plan was
// admissible), so each iteration also asserts that a plan commits: the
// benchmark doubles as a perf gate and a regression tripwire.
func BenchmarkPlannerGbit(b *testing.B) {
	for _, capacity := range []float64{1e9, 10e9} {
		capacity := capacity
		b.Run(topo.FormatBits(capacity), func(b *testing.B) {
			tp := topo.Abilene(capacity, time.Millisecond)
			demands := []topo.Demand{
				{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 0.9 * capacity},
				{Ingress: tp.MustNode("LosAngeles"), PrefixName: "cdn-east", Volume: 0.6 * capacity},
				{Ingress: tp.MustNode("Chicago"), PrefixName: "cdn-west", Volume: 0.7 * capacity},
			}
			loads, err := te.IGPLoads(tp, demands)
			if err != nil {
				b.Fatal(err)
			}
			alarm, ok := controller.HottestLinkAlarm(tp, loads)
			if !ok {
				b.Fatal("no capacitated link")
			}
			ctx := controller.AnalyticPlanContext(tp, demands, nil,
				controller.AlarmEvent(alarm), controller.Config{})
			planner := controller.NewPlanner()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, errs := planner.Plan(ctx)
				if len(errs) > 0 {
					b.Fatal(errs)
				}
				if plan == nil {
					b.Fatal("no plan commits at Gbit scale (numerics regression)")
				}
			}
		})
	}
}

// BenchmarkPlannerRepeat measures the planner's repeat-invocation path —
// the shape of a standby recompute storm or an alarm train: the same
// topology and demand set planned over and over. "cold" rebuilds the
// artifact cache every invocation (the pre-amortisation behaviour);
// "warm" reuses one caller-owned PlanArtifacts across invocations, so
// SPF trees, K-shortest-path sets, believed-topology compilations, and
// the LP basis all carry over. The committed baseline records the gap the
// CI bench gate protects (the acceptance bar is >= 3x warm over cold).
// "warm-qoe" is the warm path with QoE scoring switched on — the stall
// predictor consulted per candidate plus the qoe-greedy strategy in the
// fan-out — and its baseline must stay within 10% of plain warm: on hits
// the QoE memo reduces scoring to one cache lookup per candidate, so
// QoE-aware planning rides the amortisation layer nearly for free.
func BenchmarkPlannerRepeat(b *testing.B) {
	tp := topo.Abilene(1e9, time.Millisecond)
	demands := []topo.Demand{
		{Ingress: tp.MustNode("Seattle"), PrefixName: "cdn-east", Volume: 0.9e9},
		{Ingress: tp.MustNode("LosAngeles"), PrefixName: "cdn-east", Volume: 0.6e9},
		{Ingress: tp.MustNode("Chicago"), PrefixName: "cdn-west", Volume: 0.7e9},
	}
	loads, err := te.IGPLoads(tp, demands)
	if err != nil {
		b.Fatal(err)
	}
	alarm, ok := controller.HottestLinkAlarm(tp, loads)
	if !ok {
		b.Fatal("no capacitated link")
	}
	ev := controller.AlarmEvent(alarm)

	b.Run("cold", func(b *testing.B) {
		planner := controller.NewPlanner()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := controller.AnalyticPlanContext(tp, demands, nil, ev, controller.Config{})
			if plan, errs := planner.Plan(ctx); len(errs) > 0 || plan == nil {
				b.Fatalf("plan=%v errs=%v", plan, errs)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		planner := controller.NewPlanner()
		arts := controller.NewPlanArtifacts(tp)
		// Pay the fill outside the timed region: the benchmark measures the
		// second-and-later invocation at unchanged generations.
		ctx := controller.AnalyticPlanContextCached(arts, tp, demands, nil, ev, controller.Config{})
		if plan, errs := planner.Plan(ctx); len(errs) > 0 || plan == nil {
			b.Fatalf("warm-up plan=%v errs=%v", plan, errs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := controller.AnalyticPlanContextCached(arts, tp, demands, nil, ev, controller.Config{})
			if plan, errs := planner.Plan(ctx); len(errs) > 0 || plan == nil {
				b.Fatalf("plan=%v errs=%v", plan, errs)
			}
		}
		b.StopTimer()
		st := arts.Stats()
		if st.Hits == 0 {
			b.Fatal("warm path never hit the artifact cache")
		}
	})
	b.Run("warm-qoe", func(b *testing.B) {
		planner := controller.NewPlanner()
		arts := controller.NewPlanArtifacts(tp)
		model := qoe.Model{Members: map[string]map[topo.NodeID]int{
			"cdn-east": {tp.MustNode("Seattle"): 600, tp.MustNode("LosAngeles"): 400},
			"cdn-west": {tp.MustNode("Chicago"): 500},
		}}
		cfg := controller.Config{ScoreMode: controller.ScoreQoE}
		ctx := controller.AnalyticPlanContextCached(arts, tp, demands, nil, ev, cfg).WithQoE(model)
		if plan, errs := planner.Plan(ctx); len(errs) > 0 || plan == nil {
			b.Fatalf("warm-up plan=%v errs=%v", plan, errs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := controller.AnalyticPlanContextCached(arts, tp, demands, nil, ev, cfg).WithQoE(model)
			if plan, errs := planner.Plan(ctx); len(errs) > 0 || plan == nil {
				b.Fatalf("plan=%v errs=%v", plan, errs)
			}
		}
		b.StopTimer()
		if st := arts.Stats(); st.QoEHits == 0 {
			b.Fatal("warm-qoe path never hit the QoE memo")
		}
	})
}

// --- Scenario-matrix benchmarks -----------------------------------------

// BenchmarkScenarioCell runs one representative matrix cell end to end,
// both controller modes: the cost of a single stress-harness cell.
func BenchmarkScenarioCell(b *testing.B) {
	spec, ok := scenarios.SpecByName("ring/surge")
	if !ok {
		b.Fatal("ring/surge not in matrix")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := scenarios.RunPair(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioScaling sweeps the harness across topology sizes: the
// cost trajectory every scaling PR must not regress.
func BenchmarkScenarioScaling(b *testing.B) {
	cases := []scenarios.TopoSpec{
		{Family: "waxman", Size: 12, Seed: 13},
		{Family: "waxman", Size: 16, Seed: 13},
		{Family: "waxman", Size: 24, Seed: 13},
		{Family: "fattree", Size: 4, Seed: 2},
		{Family: "ring", Size: 16},
	}
	for _, ts := range cases {
		ts := ts
		b.Run(fmt.Sprintf("%s-%d", ts.Family, ts.Size), func(b *testing.B) {
			spec := scenarios.Spec{Topo: ts, Workload: "surge", Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := scenarios.Run(spec, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioMatrix runs the entire matrix serially: the full
// stress-harness wall-clock cost.
func BenchmarkScenarioMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range scenarios.MatrixSpecs() {
			cmp, err := scenarios.Compare(spec)
			if err != nil {
				b.Fatal(err)
			}
			if len(cmp.Violations) > 0 {
				b.Fatalf("%s: %v", spec.Name, cmp.Violations)
			}
		}
	}
}

// churnBench is a converged IGP domain cached for the parallel-core
// benchmarks: cold-converging the big fabrics costs tens of seconds (the
// initial LSDB flood), so it is paid once per process and shared across
// -count repeats and worker modes. step() flips one core link's weight
// and re-converges, then restores it — the batch-tick workload the
// parallel core targets: the change floods (serial packet events), then
// every router's debounced SPF recompute lands at the same instants and
// fans out across the pool. The flip-and-restore leaves the domain in its
// converged state, which is what makes the cache sound; SetWorkers
// switches modes on the live scheduler between subcases. Output is
// byte-identical at any width (TestParallelCoreDeterminism pins this);
// only wall-clock and allocs change.
type churnBench struct {
	sched *event.Scheduler
	dom   *ospf.Domain
	link  topo.Link
}

var churnCache = map[string]*churnBench{}

func churnDomain(b *testing.B, name string, build func() *topo.Topology) *churnBench {
	b.Helper()
	if c, ok := churnCache[name]; ok {
		return c
	}
	tp := build()
	sched := event.NewScheduler()
	dom := ospf.NewDomain(tp, sched, ospf.Config{})
	dom.Start()
	if _, err := dom.RunUntilConverged(time.Minute); err != nil {
		b.Fatal(err)
	}
	c := &churnBench{sched: sched, dom: dom}
	for _, l := range tp.Links() {
		if !tp.Node(l.From).Host && !tp.Node(l.To).Host {
			c.link = l
			break
		}
	}
	churnCache[name] = c
	return c
}

func (c *churnBench) step(b *testing.B) {
	b.Helper()
	for _, w := range [2]int64{c.link.Weight + 1, c.link.Weight} {
		if err := c.dom.SetLinkWeight(c.link.From, c.link.To, w); err != nil {
			b.Fatal(err)
		}
		if _, err := c.dom.RunUntilConverged(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	if errs := c.dom.Errors; len(errs) > 0 {
		b.Fatalf("protocol errors: %v", errs)
	}
}

// runChurn runs the weight-churn op under both pool widths: "seq" pins
// Workers=1 (the pure sequential core), "par" uses GOMAXPROCS.
func runChurn(b *testing.B, name string, build func() *topo.Topology) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			c := churnDomain(b, name, build)
			c.sched.SetWorkers(mode.workers)
			c.step(b) // warm the scratch pools and flood-buffer freelist
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.step(b)
			}
			b.StopTimer()
			if par := c.sched.Parallel(); mode.workers != 1 && par.Workers > 1 && par.Batches == 0 {
				b.Fatal("pool enabled but no parallel batch executed")
			}
		})
	}
}

// BenchmarkParallelSPF measures the worker pool on the control plane
// alone, at CI-friendly size: a converged fat-tree k=8 fabric (80
// switches + 128 hosts) has one core link's weight flipped and restored
// per op, debouncing an SPF recompute on every switch.
func BenchmarkParallelSPF(b *testing.B) {
	runChurn(b, "fattree8", func() *topo.Topology {
		return topo.FatTree(topo.FatTreeOpts{K: 8, Capacity: 10e6, MaxWeight: 3, Seed: 2})
	})
}

// BenchmarkScaleTier is the million-viewer tier's control-plane cost
// probe: the fat-tree k=16 fabric of the fattree16-1m scale cell (320
// switches + 1024 hosts at 10 Gbit/s), weight-churned like
// BenchmarkParallelSPF. Per op, 320 debounced SPF recomputes over the
// 1344-node graph ride the batch path — the dominant cost of the
// million-viewer runs, and the op the multi-core speedup bar is measured
// on (the par/seq ns/op ratio in BENCH_baseline.json; >= 2x expected at
// GOMAXPROCS >= 4, ~1x when the pool has one core to run on).
func BenchmarkScaleTier(b *testing.B) {
	runChurn(b, "fattree16", func() *topo.Topology {
		return topo.FatTree(topo.FatTreeOpts{K: 16, Capacity: 10e9, MaxWeight: 3, Seed: 2})
	})
}
