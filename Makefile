# Developer entry points. Everything is stdlib Go; no tool downloads.

GO ?= go

.PHONY: all build test race vet fuzz matrix bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz passes over the BER decoder and the topology parser.
fuzz:
	$(GO) test -fuzz='^FuzzDecodeMessage$$' -fuzztime=30s ./internal/snmp
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/topo

# The scenario-matrix stress harness as a CI gate.
matrix:
	$(GO) run ./cmd/fiblab -matrix

# Refresh the committed benchmark baseline. -benchtime=1x keeps it quick
# and deterministic enough for trajectory tracking; bump it locally when
# measuring a specific optimisation. The bench run and the JSON
# conversion are separate steps so a failing benchmark aborts before the
# baseline is overwritten.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . > bench.out.tmp || { rm -f bench.out.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_baseline.json < bench.out.tmp; s=$$?; rm -f bench.out.tmp; exit $$s
	@echo wrote BENCH_baseline.json
