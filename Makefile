# Developer entry points. Everything is stdlib Go; no tool downloads.

GO ?= go

# PR number stamped onto the per-PR benchmark snapshot `make bench`
# writes next to the committed baseline (BENCH_pr$(PR).json): the
# baseline tracks "current expected cost", the snapshots keep the
# trajectory across PRs diffable.
PR ?= 10

.PHONY: all build test race vet fuzz matrix failover qoe quickstart bench bench-gate scale cover docs-check

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz passes over the BER decoder, the topology parser and the
# analytic QoE session predictor.
fuzz:
	$(GO) test -fuzz='^FuzzDecodeMessage$$' -fuzztime=30s ./internal/snmp
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/topo
	$(GO) test -fuzz='^FuzzPredictSession$$' -fuzztime=30s ./internal/qoe

# The scenario-matrix stress harness as a CI gate.
matrix:
	$(GO) run ./cmd/fiblab -matrix

# The fast-failover cells as a CI gate: BFD+standby vs SNMP-poll twins
# with 10x failure-to-commit latency and stall-ratio invariants.
failover:
	$(GO) run ./cmd/fiblab -failover

# The QoE comparison cells as a CI gate: each skew cell runs three
# times (score-mode off/util/qoe) and the qoe run must deliver strictly
# fewer stall-seconds — predicted and simulated — while staying
# admissible (lies only on the crowd prefix, never worse than no-op).
qoe:
	$(GO) run ./cmd/fiblab -qoe

# Example smoke: quickstart exercises the public API end to end (the CI
# runs it so example drift fails the build).
quickstart:
	$(GO) run ./examples/quickstart

# Refresh the committed benchmark baseline. -benchtime=1x keeps it quick
# and deterministic enough for trajectory tracking; bump it locally when
# measuring a specific optimisation. The bench run and the JSON
# conversion are separate steps so a failing benchmark aborts before the
# baseline is overwritten. Alongside the baseline it writes a per-PR
# snapshot (BENCH_pr$(PR).json) from the same run, so the cost
# trajectory stays diffable PR over PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . > bench.out.tmp || { rm -f bench.out.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_baseline.json < bench.out.tmp || { rm -f bench.out.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_pr$(PR).json < bench.out.tmp; s=$$?; rm -f bench.out.tmp; exit $$s
	@echo wrote BENCH_baseline.json and BENCH_pr$(PR).json

# Regression gate on the delta hot paths, the Gbit-scale planner, the
# failover reaction path, the planner amortisation layer, and the
# parallel simulation core: fails when ns/op of the incremental-SPF
# benchmark, the aggregate traffic plane's 100k-viewer join benchmark,
# the planner fan-out at 1 Gbit/s, the failover-cell runs (BFD+standby
# and SNMP-poll detection), the repeated-planning benchmark (cold
# rebuild vs warm PlanArtifacts reuse — the warm row's baseline sits
# far below cold, so losing the memoisation trips the gate; the
# warm-qoe row is the same warm path with QoE scoring on — stall
# predictor plus qoe-greedy in the fan-out — whose baseline sits within
# 10% of plain warm, so the QoE memoisation cannot silently rot), the
# component-partitioned reshare at both pool widths, or the worker-pool
# churn benchmarks (fat-tree k=8 and the scale tier's k=16, both pool
# widths) regresses >2x against the committed baseline. The planner
# benchmark also asserts a plan commits (so the numerics ceiling cannot
# silently return) and the failover benchmarks assert the failure was
# detected and a plan committed after it, so the fast-failover pipeline
# cannot silently break. The parallel benchmarks additionally gate
# allocs/op (limit 1.05x): the worker pool must not buy wall-clock with
# garbage. -count 5 + best-of in benchjson filters scheduler noise.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkIncrementalVsFull|BenchmarkReshareIncremental|BenchmarkPlannerGbit|BenchmarkPlannerRepeat|BenchmarkReactionLatency/failover' -benchtime 1x -count 5 . > bench.gate.tmp || { rm -f bench.gate.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -gate 'IncrementalVsFull.*/incremental$$|ReshareIncremental/viewers=100000/join$$|ReshareIncremental/viewers=100000/components/workers=(1|4)$$|PlannerGbit/1G$$|PlannerRepeat/(cold|warm|warm-qoe)$$|ReactionLatency/failover/(bfd|snmp)$$' -max-ratio 2 < bench.gate.tmp; s=$$?; rm -f bench.gate.tmp; exit $$s
	$(GO) test -run '^$$' -bench 'BenchmarkParallelSPF|BenchmarkScaleTier' -benchtime 1x -count 5 -benchmem . > bench.gate.tmp || { rm -f bench.gate.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -gate 'ParallelSPF/(seq|par)$$|ScaleTier/(seq|par)$$' -max-ratio 2 -max-allocs-ratio 1.05 < bench.gate.tmp; s=$$?; rm -f bench.gate.tmp; exit $$s

# The large-topology scaling cells with wall-clock/event telemetry
# (Gbit-capacity defaults; override with -capacity via `go run`).
scale:
	$(GO) run ./cmd/fiblab -scale

# Per-package statement coverage with CI-failing floors on the packages
# whose correctness rests on analytic claims rather than exercised
# plumbing: internal/qoe (the stall predictor the planner trusts) and
# internal/controller (admissibility and scoring). Floors sit a few
# points under the seed numbers — 92.6% for internal/qoe and 69.6% for
# internal/controller at the time the floors were pinned — so organic
# refactors don't trip them but a dropped test file does.
cover:
	@$(GO) test -cover ./... | tee cover.out.tmp; s=$$?; \
	if [ $$s -ne 0 ]; then rm -f cover.out.tmp; exit $$s; fi; \
	for want in internal/qoe:88.0 internal/controller:68.0; do \
	  pkg=$${want%%:*}; floor=$${want##*:}; \
	  pct=$$(grep -E "fibbing.net/fibbing/$$pkg	" cover.out.tmp \
	    | grep -oE '[0-9.]+% of statements' | cut -d'%' -f1); \
	  if [ -z "$$pct" ]; then \
	    echo "cover: no coverage line for $$pkg" >&2; rm -f cover.out.tmp; exit 1; \
	  fi; \
	  if ! awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p+0 >= f+0)}'; then \
	    echo "cover: $$pkg at $$pct% is below the $$floor% floor" >&2; \
	    rm -f cover.out.tmp; exit 1; \
	  fi; \
	  echo "cover: $$pkg $$pct% >= $$floor% floor"; \
	done; rm -f cover.out.tmp

# Documentation gate: vet plus a grep-based link-and-anchor check over
# README.md and docs/ARCHITECTURE.md — every relative markdown link must
# point at an existing file and every #fragment at a real heading. Pure
# sh/grep/sed, no tool downloads, like the rest of the build.
docs-check: vet
	@set -e; \
	for doc in README.md docs/ARCHITECTURE.md; do \
	  test -f "$$doc" || { echo "docs-check: $$doc missing" >&2; exit 1; }; \
	  dir=$$(dirname "$$doc"); \
	  for target in $$(grep -oE '\]\([^)]+\)' "$$doc" | sed -e 's/^](//' -e 's/)$$//' | grep -Ev '^(http|mailto:)' ); do \
	    file=$${target%%\#*}; anchor=$${target#*\#}; \
	    if [ -n "$$file" ]; then \
	      test -e "$$dir/$$file" || { echo "docs-check: $$doc links missing file $$target" >&2; exit 1; }; \
	    fi; \
	    if [ "$$anchor" != "$$target" ] && [ -n "$$anchor" ]; then \
	      src="$$dir/$$file"; [ -n "$$file" ] || src="$$doc"; \
	      grep -hE '^#{1,6} ' "$$src" | sed -e 's/^#\{1,6\} //' | tr '[:upper:]' '[:lower:]' \
	        | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g' | grep -qx "$$anchor" \
	        || { echo "docs-check: $$doc links missing anchor $$target" >&2; exit 1; }; \
	    fi; \
	  done; \
	done
	@grep -q 'docs/ARCHITECTURE.md' doc.go || { echo "docs-check: doc.go does not reference docs/ARCHITECTURE.md" >&2; exit 1; }
	@grep -q 'docs/ARCHITECTURE.md' README.md || { echo "docs-check: README.md does not link docs/ARCHITECTURE.md" >&2; exit 1; }
	@echo docs-check OK
