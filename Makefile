# Developer entry points. Everything is stdlib Go; no tool downloads.

GO ?= go

.PHONY: all build test race vet fuzz matrix quickstart bench bench-gate scale

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz passes over the BER decoder and the topology parser.
fuzz:
	$(GO) test -fuzz='^FuzzDecodeMessage$$' -fuzztime=30s ./internal/snmp
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/topo

# The scenario-matrix stress harness as a CI gate.
matrix:
	$(GO) run ./cmd/fiblab -matrix

# Example smoke: quickstart exercises the public API end to end (the CI
# runs it so example drift fails the build).
quickstart:
	$(GO) run ./examples/quickstart

# Refresh the committed benchmark baseline. -benchtime=1x keeps it quick
# and deterministic enough for trajectory tracking; bump it locally when
# measuring a specific optimisation. The bench run and the JSON
# conversion are separate steps so a failing benchmark aborts before the
# baseline is overwritten.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . > bench.out.tmp || { rm -f bench.out.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_baseline.json < bench.out.tmp; s=$$?; rm -f bench.out.tmp; exit $$s
	@echo wrote BENCH_baseline.json

# Regression gate on the delta hot paths: fails when ns/op of the
# incremental-SPF benchmark or the aggregate traffic plane's 100k-viewer
# join benchmark regresses >2x against the committed baseline. -count 5 +
# best-of in benchjson filters scheduler noise.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkIncrementalVsFull|BenchmarkReshareIncremental' -benchtime 1x -count 5 . > bench.gate.tmp || { rm -f bench.gate.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -gate 'IncrementalVsFull.*/incremental$$|ReshareIncremental/viewers=100000/join$$' -max-ratio 2 < bench.gate.tmp; s=$$?; rm -f bench.gate.tmp; exit $$s

# The large-topology scaling cells with wall-clock/event telemetry.
scale:
	$(GO) run ./cmd/fiblab -scale
